"""Write simulation traces to disk, ns-2 style.

ns-2 users lived off its trace files; this writer provides the equivalent
for offline analysis: one line per trace record, either a compact
whitespace format (``text``) or JSON lines (``jsonl``).  Attach before the
run, ``close()`` (or use as a context manager) afterwards.

Durability contract: the context manager closes (and therefore flushes)
the file *even when an exception is propagating*, so an aborted run keeps
every record written before the fault; ``flush()`` is available as an
explicit mid-run checkpoint; ``close()`` is idempotent and detaches the
writer from the tracer so no callback leaks into a later run on the same
tracer.

Example line (text format)::

    12.081672 mac.tx node=17 frame_kind=rts dst=31 pkt_kind=None

The jsonl format is the faithful one (typed values, round-trips through
``repro.metrics.replay``); the text format is for eyeballs and greps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, Iterable, Optional, Union

from repro.sim.trace import TraceRecord, Tracer

PathLike = Union[str, Path]


class TraceFileWriter:
    """Streams selected trace records to a file."""

    def __init__(
        self,
        tracer: Tracer,
        path: PathLike,
        kinds: Optional[Iterable[str]] = None,
        fmt: str = "text",
    ):
        if fmt not in ("text", "jsonl"):
            raise ValueError(f"unknown trace format {fmt!r}")
        self.path = Path(path)
        self.fmt = fmt
        self.records_written = 0
        #: Records written so far, broken down by record kind.
        self.counts_by_kind: Dict[str, int] = {}
        self._tracer = tracer
        self._kinds: Optional[list] = None if kinds is None else list(kinds)
        self._handle: Optional[IO[str]] = self.path.open("w")
        if self._kinds is None:
            tracer.subscribe("*", self._write)
        else:
            for kind in self._kinds:
                tracer.subscribe(kind, self._write)
        self._attached = True

    def _write(self, record: TraceRecord) -> None:
        if self._handle is None:
            return
        if self.fmt == "jsonl":
            line = json.dumps(
                {"t": record.time, "kind": record.kind, **record.fields},
                default=str,
                sort_keys=True,
            )
        else:
            fields = " ".join(
                f"{key}={value}" for key, value in sorted(record.fields.items())
            )
            line = f"{record.time:.6f} {record.kind} {fields}".rstrip()
        self._handle.write(line + "\n")
        self.records_written += 1
        kind = record.kind
        self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1

    def flush(self) -> None:
        """Push buffered lines to the OS — a crash-durability checkpoint."""
        if self._handle is not None:
            self._handle.flush()

    def detach(self) -> None:
        """Unsubscribe from the tracer (keeps the file open); idempotent."""
        if not self._attached:
            return
        self._attached = False
        if self._kinds is None:
            self._tracer.unsubscribe("*", self._write)
        else:
            for kind in self._kinds:
                self._tracer.unsubscribe(kind, self._write)

    def close(self) -> None:
        """Detach, flush and close the file.

        Idempotent, and safe when the run aborted mid-write: the handle is
        released (and the writer neutered) even if the final flush raises.
        """
        self.detach()
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            handle.flush()
        finally:
            handle.close()

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        # Deliberately unconditional: a propagating exception must still
        # flush+close so the records leading up to the fault survive.
        self.close()

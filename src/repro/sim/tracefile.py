"""Write simulation traces to disk, ns-2 style.

ns-2 users lived off its trace files; this writer provides the equivalent
for offline analysis: one line per trace record, either a compact
whitespace format (``text``) or JSON lines (``jsonl``).  Attach before the
run, ``close()`` (or use as a context manager) afterwards.

Example line (text format)::

    12.081672 mac.tx node=17 frame_kind=rts dst=31 pkt_kind=None
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Optional, Union

from repro.sim.trace import TraceRecord, Tracer

PathLike = Union[str, Path]


class TraceFileWriter:
    """Streams selected trace records to a file."""

    def __init__(
        self,
        tracer: Tracer,
        path: PathLike,
        kinds: Optional[Iterable[str]] = None,
        fmt: str = "text",
    ):
        if fmt not in ("text", "jsonl"):
            raise ValueError(f"unknown trace format {fmt!r}")
        self.path = Path(path)
        self.fmt = fmt
        self.records_written = 0
        self._handle: Optional[IO[str]] = self.path.open("w")
        if kinds is None:
            tracer.subscribe("*", self._write)
        else:
            for kind in kinds:
                tracer.subscribe(kind, self._write)

    def _write(self, record: TraceRecord) -> None:
        if self._handle is None:
            return
        if self.fmt == "jsonl":
            line = json.dumps(
                {"t": record.time, "kind": record.kind, **record.fields},
                default=str,
                sort_keys=True,
            )
        else:
            fields = " ".join(
                f"{key}={value}" for key, value in sorted(record.fields.items())
            )
            line = f"{record.time:.6f} {record.kind} {fields}".rstrip()
        self._handle.write(line + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

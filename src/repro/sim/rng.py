"""Deterministic, named random-number streams.

The paper's methodology requires that *identical mobility and traffic
scenarios are used across all protocol variations*.  We achieve that by
deriving every stochastic component's generator from a single root seed and a
stable component name: ``streams.stream("mobility")`` yields the same
generator sequence no matter which protocol variant runs, or in which order
streams are requested.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A factory of independent, reproducible ``numpy`` generators.

    Each stream is keyed by one or more names; the key is hashed into the
    ``spawn_key`` of a :class:`numpy.random.SeedSequence`, so distinct names
    give statistically independent streams while identical ``(seed, names)``
    pairs always give identical streams.

    Example
    -------
    >>> a = RandomStreams(7).stream("mobility")
    >>> b = RandomStreams(7).stream("mobility")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def stream(self, *names: str) -> np.random.Generator:
        """Return a fresh generator for the given component name(s)."""
        if not names:
            raise ValueError("at least one stream name is required")
        key = tuple(zlib.crc32(name.encode("utf-8")) for name in names)
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=key)
        return np.random.Generator(np.random.PCG64(seq))

    def child(self, name: str) -> "RandomStreams":
        """Derive a namespaced sub-factory (e.g. one per node)."""
        derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed & 0xFFFFFFFF)
        return RandomStreams((self.seed << 16) ^ derived)

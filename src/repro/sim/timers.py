"""Restartable timers layered on top of the event scheduler.

Protocol code (MAC timeouts, route-discovery backoff, cache sweeps) wants a
timer object it can start, cancel and restart without tracking raw
:class:`~repro.sim.engine.Event` handles.  These helpers provide that.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A one-shot, restartable timer.

    ``start`` on a running timer reschedules it (the previous deadline is
    cancelled), which is the semantics every protocol timeout here needs.
    """

    def __init__(self, sim: Simulator, fn: Callable[..., Any]):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        """True if the timer is pending and will fire unless cancelled."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will fire, or None if not running."""
        if self.running:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float, *args: Any) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, args)

    def cancel(self) -> None:
        """Disarm the timer if it is pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self, args: tuple) -> None:
        self._event = None
        self._fn(*args)


class PeriodicTimer:
    """A timer that re-arms itself every ``period`` seconds until stopped.

    Used, e.g., for the paper's cache-expiry sweep that runs every 0.5 s.
    """

    def __init__(self, sim: Simulator, period: float, fn: Callable[[], Any]):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._fn = fn
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking.  The first tick fires after ``initial_delay``
        (default: one full period)."""
        self.stop()
        delay = self.period if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self._event = self._sim.schedule(self.period, self._tick)
        self._fn()

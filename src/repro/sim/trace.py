"""Structured event tracing.

The simulator components emit trace records (packet transmissions, link
breaks, cache operations...) through a :class:`Tracer`.  Metrics collection is
implemented as trace subscribers, and tests use tracers to assert on protocol
behaviour without reaching into private state.

Emitting is cheap when nobody listens: :meth:`Tracer.emit` short-circuits if
the event type has no subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence inside the simulation."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError as exc:  # pragma: no cover - error path
            raise AttributeError(name) from exc


Subscriber = Callable[[TraceRecord], None]


class Tracer:
    """Pub/sub hub for simulation trace records."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._wildcard: List[Subscriber] = []

    def subscribe(self, kind: str, fn: Subscriber) -> None:
        """Call ``fn`` for every record of type ``kind`` (``"*"`` for all)."""
        if kind == "*":
            self._wildcard.append(fn)
        else:
            self._subscribers.setdefault(kind, []).append(fn)

    def unsubscribe(self, kind: str, fn: Subscriber) -> None:
        """Detach ``fn`` from ``kind`` (``"*"`` for a wildcard subscription).

        Raises :class:`ValueError` if ``fn`` is not currently subscribed — a
        silent no-op would hide double-detach bugs in short-lived subscribers
        (flight recorders, interval snapshotters) that attach per run.

        Removing the last subscriber of a kind restores ``wants(kind)`` to
        False, so guarded hot-path emits go back to costing one dict lookup.
        """
        if kind == "*":
            try:
                self._wildcard.remove(fn)
            except ValueError:
                raise ValueError(f"{fn!r} has no wildcard subscription") from None
            return
        listeners = self._subscribers.get(kind)
        if not listeners or fn not in listeners:
            raise ValueError(f"{fn!r} is not subscribed to kind {kind!r}")
        listeners.remove(fn)
        if not listeners:
            del self._subscribers[kind]

    def wants(self, kind: str) -> bool:
        """True if emitting ``kind`` would reach at least one subscriber."""
        return bool(self._wildcard) or kind in self._subscribers

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Publish a record to subscribers of ``kind`` (and wildcards)."""
        listeners = self._subscribers.get(kind)
        if not listeners and not self._wildcard:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if listeners:
            for fn in listeners:
                fn(record)
        for fn in self._wildcard:
            fn(record)


class NullTracer(Tracer):
    """A tracer that drops everything; useful default for micro-tests."""

    def emit(self, time: float, kind: str, **fields: Any) -> None:  # noqa: D102
        return

"""Network-layer plumbing: packets, the node protocol stack, and the DSR
send buffer."""

from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind, dsr_header_bytes
from repro.net.sendbuffer import BufferedPacket, SendBuffer
from repro.net.node import Node

__all__ = [
    "BROADCAST",
    "Packet",
    "PacketKind",
    "dsr_header_bytes",
    "SendBuffer",
    "BufferedPacket",
    "Node",
]

"""The DSR send buffer.

Packets waiting for a route (discovery in progress) are buffered *only at
the traffic source*, exactly as in the CMU ns-2 model the paper used:
capacity 64 packets, and a packet is dropped if it has waited more than 30
seconds.  When the buffer is full the oldest packet is evicted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.net.packet import Packet


@dataclass
class BufferedPacket:
    packet: Packet
    enqueued_at: float


class SendBuffer:
    """A bounded, aging buffer of packets awaiting routes."""

    def __init__(self, capacity: int = 64, max_wait: float = 30.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_wait <= 0:
            raise ValueError("max_wait must be positive")
        self.capacity = capacity
        self.max_wait = max_wait
        self._entries: Deque[BufferedPacket] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, packet: Packet, now: float) -> Optional[Packet]:
        """Buffer ``packet``; returns an evicted packet if the buffer was
        full (the oldest entry is sacrificed)."""
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted = self._entries.popleft().packet
        self._entries.append(BufferedPacket(packet, now))
        return evicted

    def take_for(self, dst: int) -> List[Packet]:
        """Remove and return all buffered packets destined for ``dst``."""
        taken = [entry.packet for entry in self._entries if entry.packet.dst == dst]
        if taken:
            self._entries = deque(
                entry for entry in self._entries if entry.packet.dst != dst
            )
        return taken

    def destinations(self) -> List[int]:
        """Distinct destinations with at least one buffered packet."""
        seen: List[int] = []
        for entry in self._entries:
            if entry.packet.dst not in seen:
                seen.append(entry.packet.dst)
        return seen

    def has_packets_for(self, dst: int) -> bool:
        return any(entry.packet.dst == dst for entry in self._entries)

    def expire(self, now: float) -> List[Packet]:
        """Drop and return every packet older than ``max_wait``."""
        expired: List[Packet] = []
        while self._entries and now - self._entries[0].enqueued_at > self.max_wait:
            expired.append(self._entries.popleft().packet)
        # Entries are appended in time order, so the scan above is complete.
        return expired

    def drain(self) -> List[Packet]:
        """Remove and return everything (used at teardown for accounting)."""
        packets = [entry.packet for entry in self._entries]
        self._entries.clear()
        return packets

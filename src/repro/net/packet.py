"""Network-layer packets.

One :class:`Packet` class covers data and every routing-control message; the
protocol-specific payload (route request/reply/error bodies) rides in
``info``.  Header sizes follow the DSR Internet-Draft encoding closely
enough for overhead accounting: a fixed per-option overhead plus four bytes
per address in any carried route.

Packets are *logically immutable per hop*: a node that forwards a packet
calls :meth:`Packet.clone` and mutates only its own copy, because the same
object may simultaneously sit in other nodes' queues or be snooped
promiscuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, List, Optional

from repro.net.addresses import BROADCAST

IP_HEADER_BYTES = 20
DSR_FIXED_BYTES = 4
DSR_ADDRESS_BYTES = 4


class PacketKind(str, Enum):
    """What a packet is, at the routing layer."""

    DATA = "data"
    RREQ = "rreq"
    RREP = "rrep"
    RERR = "rerr"
    AODV_RREQ = "aodv_rreq"
    AODV_RREP = "aodv_rrep"
    AODV_RERR = "aodv_rerr"

    @property
    def is_routing_control(self) -> bool:
        return self is not PacketKind.DATA


def dsr_header_bytes(route_len: int) -> int:
    """Bytes of IP + DSR headers for a packet carrying ``route_len`` hops."""
    return IP_HEADER_BYTES + DSR_FIXED_BYTES + DSR_ADDRESS_BYTES * route_len


@dataclass
class Packet:
    """A network-layer packet.

    Attributes
    ----------
    kind:
        Routing-layer type.
    src / dst:
        Originator and final destination node ids (``dst`` may be
        :data:`~repro.net.addresses.BROADCAST` for floods).
    uid:
        Unique id assigned at origination; retained across forwarding so
        end-to-end delivery and duplicate suppression can key on it.
    payload_bytes:
        Application payload size (512 for the paper's CBR data, 0 for
        control packets).
    born:
        Origination time, for end-to-end delay measurement.
    source_route:
        For source-routed packets: the complete hop list including ``src``
        and ``dst``.
    route_index:
        Position of the *current holder* within ``source_route``.
    ttl:
        Remaining hop budget for flooded packets (route requests).
    info:
        Protocol payload (e.g. :class:`repro.core.messages.RouteRequest`).
    salvaged:
        How many times intermediate nodes re-routed this packet after a
        broken link (DSR caps this).
    """

    kind: PacketKind
    src: int
    dst: int
    uid: int
    payload_bytes: int = 0
    born: float = 0.0
    source_route: Optional[List[int]] = None
    route_index: int = 0
    ttl: int = 255
    info: Any = None
    salvaged: int = 0
    piggyback: Any = field(default=None)

    def clone(self, **changes: Any) -> "Packet":
        """Copy for per-hop mutation; list fields are deep-copied."""
        fresh = replace(self, **changes)
        if fresh.source_route is not None and "source_route" not in changes:
            fresh.source_route = list(fresh.source_route)
        return fresh

    # -- source-route helpers ------------------------------------------------

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def next_hop(self) -> int:
        """The node this packet should be handed to next."""
        if self.source_route is None:
            raise ValueError(f"packet {self.uid} has no source route")
        if self.route_index + 1 >= len(self.source_route):
            raise ValueError(
                f"packet {self.uid} is already at the end of its source route"
            )
        return self.source_route[self.route_index + 1]

    def current_hop(self) -> int:
        if self.source_route is None:
            raise ValueError(f"packet {self.uid} has no source route")
        return self.source_route[self.route_index]

    def remaining_route(self) -> List[int]:
        """Hops from the current holder to the destination, inclusive."""
        if self.source_route is None:
            raise ValueError(f"packet {self.uid} has no source route")
        return self.source_route[self.route_index:]

    def at_destination(self) -> bool:
        if self.source_route is None:
            return False
        return self.route_index == len(self.source_route) - 1

    # -- size accounting -----------------------------------------------------

    def header_bytes(self) -> int:
        route_len = len(self.source_route) if self.source_route else 0
        extra = 0
        if self.info is not None and hasattr(self.info, "header_bytes"):
            extra += self.info.header_bytes()
        if self.piggyback is not None and hasattr(self.piggyback, "header_bytes"):
            extra += self.piggyback.header_bytes()
        return dsr_header_bytes(route_len) + extra

    def size_bytes(self) -> int:
        """Total network-layer bytes on the wire."""
        return self.header_bytes() + self.payload_bytes

"""A node's protocol stack: application <-> routing agent <-> MAC <-> radio.

``Node`` owns the layer objects and wires their callbacks together.  The
routing agent is pluggable — DSR (:mod:`repro.core`) and AODV
(:mod:`repro.baselines.aodv`) both implement the small ``RoutingAgent``
surface the node expects:

* ``originate(packet)``            — application wants this packet delivered,
* ``handle_packet(packet)``        — a packet addressed to us arrived,
* ``handle_promiscuous(packet)``   — we overheard someone else's packet,
* ``handle_unicast_success(packet, next_hop)``,
* ``handle_unicast_failure(packet, next_hop)`` — link-layer feedback.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.mac.dcf import DcfMac
from repro.mac.timing import MacTiming
from repro.net.packet import Packet, PacketKind
from repro.phy.channel import Channel
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

# Room for ~16.7M packets per node before uid collision — far beyond any run.
_UID_STRIDE = 1 << 24


class Node:
    """One mobile host: radio, MAC, routing agent and application hooks."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        channel: Channel,
        agent: Any,
        mac_rng: np.random.Generator,
        timing: Optional[MacTiming] = None,
        tracer: Optional[Tracer] = None,
        queue_capacity: int = 50,
    ):
        self.node_id = node_id
        self.sim = sim
        self.tracer = tracer or Tracer()
        self.radio = Radio(node_id, channel)
        self.mac = DcfMac(
            node_id,
            sim,
            self.radio,
            mac_rng,
            timing=timing,
            tracer=self.tracer,
            queue_capacity=queue_capacity,
        )
        self.agent = agent
        self._uid_counter = 0

        # Application-level receive hook (sinks attach here).
        self.app_receive: Callable[[Packet], None] = lambda packet: None

        # Wire MAC -> agent.
        self.mac.deliver = agent.handle_packet
        self.mac.promiscuous = agent.handle_promiscuous
        self.mac.on_unicast_success = agent.handle_unicast_success
        self.mac.on_unicast_failure = agent.handle_unicast_failure
        agent.attach(self)

    # -- application side ---------------------------------------------------

    def next_uid(self) -> int:
        """A packet uid unique across the whole simulation."""
        self._uid_counter += 1
        return self.node_id * _UID_STRIDE + self._uid_counter

    def send_data(self, dst: int, payload_bytes: int, info: Any = None) -> Packet:
        """Originate an application data packet toward ``dst``.

        ``info`` carries an optional application payload object (e.g. a TCP
        segment header) — opaque to the routing layer.
        """
        packet = Packet(
            kind=PacketKind.DATA,
            src=self.node_id,
            dst=dst,
            uid=self.next_uid(),
            payload_bytes=payload_bytes,
            born=self.sim.now,
            info=info,
        )
        if self.tracer.wants("app.send"):
            self.tracer.emit(
                self.sim.now, "app.send", src=self.node_id, dst=dst, uid=packet.uid
            )
        self.agent.originate(packet)
        return packet

    def deliver_to_app(self, packet: Packet) -> None:
        """Called by the routing agent when a data packet reaches us."""
        if self.tracer.wants("app.recv"):
            self.tracer.emit(
                self.sim.now,
                "app.recv",
                src=packet.src,
                dst=self.node_id,
                uid=packet.uid,
                born=packet.born,
            )
        self.app_receive(packet)

"""Address constants.

Node ids double as link-layer and network-layer addresses (the simulator has
one interface per node).  ``BROADCAST`` is the all-nodes address at both
layers.
"""

BROADCAST = -1

"""Structured JSONL logging with trace correlation for the service fleet.

One :class:`StructuredLogger` per process; every event is a single JSON
object on one line — ``ts``, ``level``, ``component``, ``event``, any
bound fields, any per-call fields — written and flushed under one ranked
I/O lock so concurrent service threads never interleave partial lines.
``trace_id``/``span_id`` fields (bound or per-call) correlate log lines
with :mod:`repro.obs.fleet` spans, which is what makes "grep the trace
id" work across the coordinator log, the worker logs and the journal.

:meth:`StructuredLogger.bind` returns a child logger sharing the parent's
stream, lock and level but with extra fields pre-attached — the idiom for
per-job (``log.bind(job=job_id, trace_id=...)``) and per-shard loggers.

The logger is stdlib-only and deliberately tiny: no handlers, no
formatters, no global registry.  The stream defaults to ``sys.stderr``
resolved *at emit time* (so pytest's capsys and subprocess redirection
both see the lines), and the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, Optional, TextIO

from repro.devtools.lockdep import OrderedLock

__all__ = ["LEVELS", "StructuredLogger"]

#: Severity order; a logger emits events at or above its configured level.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class StructuredLogger:
    """A leveled JSONL logger whose every line is one event object.

    ``stream=None`` (the default) resolves ``sys.stderr`` at each emit;
    passing an explicit stream pins it (tests pass ``io.StringIO()``).
    ``clock`` defaults to wall time — log timestamps are serving
    metadata, never simulation state.
    """

    def __init__(
        self,
        component: str,
        stream: Optional[TextIO] = None,
        level: str = "info",
        clock: Optional[Callable[[], float]] = None,
        fields: Optional[Dict[str, Any]] = None,
        _lock: Optional[OrderedLock] = None,
    ) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level: {level!r}")
        self.component = component
        self.level = level
        self._stream = stream
        self._clock = clock if clock is not None else time.time
        self._fields = dict(fields or {})
        # Rank 65: an I/O leaf above every service lock, so any thread may
        # log while holding service/board/metrics/tracer locks.  Writes to
        # the (possibly line-buffered) stream block, hence io_lock.
        self._io = (
            _lock
            if _lock is not None
            else OrderedLock("slog.io", rank=65, reentrant=False, io_lock=True)
        )

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger with extra fields attached to every event."""
        merged = dict(self._fields)
        merged.update(fields)
        return StructuredLogger(
            component=self.component,
            stream=self._stream,
            level=self.level,
            clock=self._clock,
            fields=merged,
            _lock=self._io,
        )

    def enabled_for(self, level: str) -> bool:
        return _LEVEL_RANK.get(level, 0) >= _LEVEL_RANK[self.level]

    def log(self, level: str, event: str, **fields: Any) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level: {level!r}")
        if not self.enabled_for(level):
            return
        record: Dict[str, Any] = {
            "ts": round(float(self._clock()), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(self._fields)
        record.update(fields)
        line = json.dumps(record, default=str, sort_keys=False)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._io:
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:
                pass  # stream closed mid-shutdown; losing the line is fine

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

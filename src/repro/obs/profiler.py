"""Engine wall-clock profiler: where does a run's host time go?

The measurement itself lives in the engine (:meth:`Simulator.
enable_profiling` — a duplicated run loop, so the off path is untouched);
this module is the reporting layer: grouping per-callback attribution by
component class and rendering the table ``repro-run --profile`` prints.

Profiling observes wall time only and never feeds simulation state, so a
profiled run produces bit-identical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import ProfileEntry, Simulator


@dataclass(frozen=True)
class ComponentProfile:
    """Attribution rolled up to one component (callback qualname prefix)."""

    component: str
    calls: int
    wall_s: float


@dataclass(frozen=True)
class ProfileReport:
    """A finished profile: per-callback entries plus component roll-ups."""

    entries: Tuple[ProfileEntry, ...]

    @property
    def total_wall_s(self) -> float:
        return sum(entry.wall_s for entry in self.entries)

    @property
    def total_calls(self) -> int:
        return sum(entry.calls for entry in self.entries)

    def by_component(self) -> List[ComponentProfile]:
        """Entries grouped by the class part of the callback qualname
        (``DcfMac._defer_expired`` -> ``DcfMac``), sorted by wall desc."""
        groups: Dict[str, List[float]] = {}
        for entry in self.entries:
            component = entry.key.split(".", 1)[0]
            acc = groups.setdefault(component, [0.0, 0.0])
            acc[0] += entry.calls
            acc[1] += entry.wall_s
        rolled = [
            ComponentProfile(component=name, calls=int(acc[0]), wall_s=acc[1])
            for name, acc in groups.items()
        ]
        rolled.sort(key=lambda c: (-c.wall_s, c.component))
        return rolled

    def format(self, top: Optional[int] = 15) -> str:
        """Human-readable table: callbacks ranked by wall time."""
        total = self.total_wall_s or 1.0
        lines = [
            f"engine profile: {self.total_calls} calls, "
            f"{self.total_wall_s * 1000.0:.1f} ms in callbacks",
            f"{'callback':<44} {'calls':>9} {'wall ms':>10} {'%':>6}",
        ]
        entries = self.entries[:top] if top is not None else self.entries
        for entry in entries:
            lines.append(
                f"{entry.key[:44]:<44} {entry.calls:>9} "
                f"{entry.wall_s * 1000.0:>10.2f} {100.0 * entry.wall_s / total:>6.1f}"
            )
        hidden = len(self.entries) - len(entries)
        if hidden > 0:
            lines.append(f"... {hidden} more callback(s)")
        return "\n".join(lines)


class EngineProfiler:
    """Opt-in facade over the engine's profiling hooks.

    >>> profiler = EngineProfiler(handle.sim).enable()
    >>> handle.run()                                        # doctest: +SKIP
    >>> print(profiler.report().format())                   # doctest: +SKIP
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def enable(self) -> "EngineProfiler":
        self.sim.enable_profiling()
        return self

    def disable(self) -> None:
        self.sim.disable_profiling()

    @property
    def enabled(self) -> bool:
        return self.sim.profiling_enabled

    def report(self) -> ProfileReport:
        """The attribution accumulated so far (raises if profiling is off)."""
        entries = self.sim.profile_entries()
        if entries is None:
            raise RuntimeError(
                "profiling is not enabled on this simulator "
                "(call enable() before running)"
            )
        return ProfileReport(entries=entries)

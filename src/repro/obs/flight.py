"""Flight recorder: a bounded ring of the most recent trace records.

When a simulation dies mid-run, the final metrics are useless and the full
trace may not have been requested — the flight recorder keeps the last N
:class:`TraceRecord`s in memory (wildcard subscription, O(1) per record)
and dumps them on demand or when :meth:`armed` catches a propagating
exception, ns-2 post-mortem style but without the gigabyte trace file.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Deque, Iterable, Iterator, List, Optional, Union

from repro.sim.trace import TraceRecord, Tracer

PathLike = Union[str, Path]


def _render(record: TraceRecord) -> str:
    """One text line per record, matching TraceFileWriter's text format."""
    fields = " ".join(f"{k}={v}" for k, v in sorted(record.fields.items()))
    return f"{record.time:.6f} {record.kind} {fields}".rstrip()


class FlightRecorder:
    """Ring buffer of recent trace records, attached to a tracer.

    Parameters
    ----------
    tracer:
        The hub to record from (attaches immediately).
    capacity:
        Ring size; older records are evicted in O(1).
    kinds:
        Record only these kinds (default: everything).  Note that any
        wildcard subscription makes *all* guarded emits fire, so a
        kind-filtered recorder is also the cheaper one.
    """

    def __init__(
        self,
        tracer: Tracer,
        capacity: int = 512,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.records_seen = 0
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self._tracer = tracer
        self._kinds: Optional[List[str]] = None if kinds is None else list(kinds)
        if self._kinds is None:
            tracer.subscribe("*", self._record)
        else:
            for kind in self._kinds:
                tracer.subscribe(kind, self._record)
        self._attached = True

    def _record(self, record: TraceRecord) -> None:
        self._ring.append(record)
        self.records_seen += 1

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Unsubscribe from the tracer (the ring stays readable); idempotent."""
        if not self._attached:
            return
        self._attached = False
        if self._kinds is None:
            self._tracer.unsubscribe("*", self._record)
        else:
            for kind in self._kinds:
                self._tracer.unsubscribe(kind, self._record)

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def records(self) -> List[TraceRecord]:
        """Oldest-to-newest snapshot of the ring."""
        return list(self._ring)

    def format(self) -> str:
        """The ring as text-format trace lines with a one-line header."""
        dropped = self.records_seen - len(self._ring)
        header = (
            f"# flight recorder: last {len(self._ring)} of "
            f"{self.records_seen} record(s) (capacity {self.capacity}, "
            f"{dropped} older evicted)"
        )
        return "\n".join([header, *(_render(record) for record in self._ring)])

    def dump(self, path: PathLike) -> Path:
        """Write :meth:`format` to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.format() + "\n")
        return target

    # -- fault handling ----------------------------------------------------

    @contextmanager
    def armed(self, path: PathLike) -> Iterator["FlightRecorder"]:
        """Dump the ring to ``path`` if the body raises, then re-raise.

        >>> recorder = FlightRecorder(handle.tracer)        # doctest: +SKIP
        >>> with recorder.armed("crash-context.txt"):       # doctest: +SKIP
        ...     handle.run()
        """
        try:
            yield self
        except BaseException:
            self.dump(path)
            raise

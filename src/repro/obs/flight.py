"""Flight recorder: a bounded ring of the most recent trace records.

When a simulation dies mid-run, the final metrics are useless and the full
trace may not have been requested — the flight recorder keeps the last N
:class:`TraceRecord`s in memory (wildcard subscription, O(1) per record)
and dumps them on demand or when :meth:`armed` catches a propagating
exception, ns-2 post-mortem style but without the gigabyte trace file.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Deque, Dict, Iterable, Iterator, List, Optional, Union

from repro.sim.trace import TraceRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collector import SimulationResult

PathLike = Union[str, Path]


def _render(record: TraceRecord) -> str:
    """One text line per record, matching TraceFileWriter's text format."""
    fields = " ".join(f"{k}={v}" for k, v in sorted(record.fields.items()))
    return f"{record.time:.6f} {record.kind} {fields}".rstrip()


class FlightRecorder:
    """Ring buffer of recent trace records, attached to a tracer.

    Parameters
    ----------
    tracer:
        The hub to record from (attaches immediately).
    capacity:
        Ring size; older records are evicted in O(1).
    kinds:
        Record only these kinds (default: everything).  Note that any
        wildcard subscription makes *all* guarded emits fire, so a
        kind-filtered recorder is also the cheaper one.
    """

    def __init__(
        self,
        tracer: Tracer,
        capacity: int = 512,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.records_seen = 0
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self._tracer = tracer
        self._kinds: Optional[List[str]] = None if kinds is None else list(kinds)
        if self._kinds is None:
            tracer.subscribe("*", self._record)
        else:
            for kind in self._kinds:
                tracer.subscribe(kind, self._record)
        self._attached = True

    def _record(self, record: TraceRecord) -> None:
        self._ring.append(record)
        self.records_seen += 1

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Unsubscribe from the tracer (the ring stays readable); idempotent."""
        if not self._attached:
            return
        self._attached = False
        if self._kinds is None:
            self._tracer.unsubscribe("*", self._record)
        else:
            for kind in self._kinds:
                self._tracer.unsubscribe(kind, self._record)

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def records(self) -> List[TraceRecord]:
        """Oldest-to-newest snapshot of the ring."""
        return list(self._ring)

    def format(self) -> str:
        """The ring as text-format trace lines with a one-line header."""
        dropped = self.records_seen - len(self._ring)
        header = (
            f"# flight recorder: last {len(self._ring)} of "
            f"{self.records_seen} record(s) (capacity {self.capacity}, "
            f"{dropped} older evicted)"
        )
        return "\n".join([header, *(_render(record) for record in self._ring)])

    def dump(self, path: PathLike) -> Path:
        """Write :meth:`format` to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.format() + "\n")
        return target

    # -- fault handling ----------------------------------------------------

    @contextmanager
    def armed(self, path: PathLike) -> Iterator["FlightRecorder"]:
        """Dump the ring to ``path`` if the body raises, then re-raise.

        >>> recorder = FlightRecorder(handle.tracer)        # doctest: +SKIP
        >>> with recorder.armed("crash-context.txt"):       # doctest: +SKIP
        ...     handle.run()
        """
        try:
            yield self
        except BaseException:
            self.dump(path)
            raise


class FlightRecordingTaskFn:
    """A sweep ``TaskFn`` that crash-dumps the simulation's trace ring.

    A drop-in replacement for the engine's default run-scenario task:
    it builds the simulation itself, attaches a :class:`FlightRecorder`
    to the handle's tracer, and runs.  If the run raises, the last
    ``capacity`` trace records land in
    ``<directory>/crash-pid<pid>-seed<seed>-run<n>.trace`` before the
    error propagates — a post-mortem for ``repro-worker`` and
    ``repro-serve`` without ns-2-style gigabyte trace files.

    :meth:`dump_now` snapshots the ring of the simulation currently in
    flight (``repro-worker``'s SIGTERM-mid-shard path: the handler runs
    on the main thread, between bytecodes of the running task).

    Instances are picklable for pooled engines — the in-flight recorder
    is dropped on pickling, so each worker process records its own runs
    into the shared directory.
    """

    def __init__(self, directory: PathLike, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.directory = Path(directory)
        self.capacity = capacity
        self.dumps: List[Path] = []
        self._runs = 0
        self._current: Optional[FlightRecorder] = None
        self._current_label = ""

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_current"] = None  # the live recorder never crosses a pickle
        state["_current_label"] = ""
        return state

    def _path(self, name: str) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        return self.directory / f"{name}.trace"

    def __call__(self, payload: dict) -> "SimulationResult":
        from repro.scenarios.builder import build_simulation
        from repro.scenarios.io import scenario_from_dict

        handle = build_simulation(scenario_from_dict(payload))
        recorder = FlightRecorder(handle.tracer, capacity=self.capacity)
        self._runs += 1
        label = f"pid{os.getpid()}-seed{payload.get('seed', '?')}-run{self._runs}"
        self._current = recorder
        self._current_label = label
        try:
            result = handle.run()
        except BaseException:
            self.dumps.append(recorder.dump(self._path(f"crash-{label}")))
            raise
        finally:
            self._current = None
            self._current_label = ""
            recorder.detach()
        return result

    def dump_now(self, tag: str = "signal") -> Optional[Path]:
        """Dump the in-flight simulation's ring (``None`` when idle)."""
        recorder = self._current
        label = self._current_label
        if recorder is None or not label:
            return None
        path = recorder.dump(self._path(f"{tag}-{label}"))
        self.dumps.append(path)
        return path

"""Command-line trace inspection: ``repro-trace``.

Works on both ``TraceFileWriter`` formats (text and jsonl, sniffed
automatically) and on flight-recorder dumps::

    repro-trace summarize run.jsonl
    repro-trace filter run.jsonl --kind dsr.link_break --since 20 --until 60
    repro-trace filter run.jsonl --node 17 --format jsonl
    repro-trace timeseries run.jsonl --interval 5 --kinds app.send,app.recv

``summarize`` prints per-kind record counts and the time span;
``filter`` re-emits matching records (text or jsonl) for piping;
``timeseries`` bins record counts per virtual-time interval — the quick
version of :class:`repro.obs.interval.IntervalMetrics` for runs that only
kept a trace file.

``job`` is the fleet side: it reads one job's merged *span* trace
(:mod:`repro.obs.fleet`) from a JSON file, stdin (``-``), or straight
from a coordinator's ``GET /v1/jobs/<id>/trace`` URL, and prints the
"where did the time go" explainer — a text Gantt of every span, per-kind
and per-worker breakdowns with the straggler flagged, and the critical
path that kept the job's completion waiting::

    repro-trace job http://127.0.0.1:8642/v1/jobs/<id>/trace
    repro-submit trace <id> | repro-trace job -
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.traceio import iter_records, render_jsonl, render_text, sniff_format

#: Field names that identify "the node" of a record, in match priority order.
_NODE_FIELDS = ("node", "src", "dst", "sender", "next_hop")


def _build_parser() -> argparse.ArgumentParser:
    from repro.version import __version__

    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect simulation trace files written by TraceFileWriter.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="record counts per kind, time span, drop reasons"
    )
    summarize.add_argument("path", help="trace file (text or jsonl)")
    summarize.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    filter_cmd = sub.add_parser("filter", help="re-emit records matching predicates")
    filter_cmd.add_argument("path", help="trace file (text or jsonl)")
    filter_cmd.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="keep only this record kind (repeatable)",
    )
    filter_cmd.add_argument("--since", type=float, default=None, metavar="T")
    filter_cmd.add_argument("--until", type=float, default=None, metavar="T")
    filter_cmd.add_argument(
        "--node",
        type=int,
        default=None,
        metavar="N",
        help="keep records touching node N (node/src/dst/sender/next_hop)",
    )
    filter_cmd.add_argument(
        "--format",
        choices=("text", "jsonl"),
        default="text",
        dest="out_format",
        help="output rendering (default: text)",
    )

    timeseries = sub.add_parser(
        "timeseries", help="per-interval record counts by kind"
    )
    timeseries.add_argument("path", help="trace file (text or jsonl)")
    timeseries.add_argument(
        "--interval", type=float, default=5.0, metavar="SECONDS"
    )
    timeseries.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2,...",
        help="column kinds (default: every kind present, sorted)",
    )
    timeseries.add_argument(
        "--format",
        choices=("text", "csv"),
        default="text",
        dest="out_format",
        help="output rendering (default: aligned text table)",
    )

    job = sub.add_parser(
        "job", help="explain one job's fleet span trace (where did the time go)"
    )
    job.add_argument(
        "source",
        help="trace JSON: a file, '-' for stdin, or a coordinator "
        "http(s)://.../v1/jobs/<id>/trace URL",
    )
    job.add_argument(
        "--json",
        action="store_true",
        help="emit the computed breakdown as JSON instead of text",
    )
    job.add_argument(
        "--width",
        type=int,
        default=60,
        metavar="COLS",
        help="Gantt bar width in characters (default: 60)",
    )
    job.add_argument(
        "--max-spans",
        type=int,
        default=40,
        metavar="N",
        help="Gantt rows before folding the rest into a summary line "
        "(default: 40; breakdowns always cover every span)",
    )
    return parser


# -- summarize -------------------------------------------------------------


def _summarize(path: str, as_json: bool) -> int:
    fmt = sniff_format(path)
    counts: Dict[str, int] = {}
    drop_reasons: Dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    total = 0
    for record in iter_records(path, fmt):
        total += 1
        kind = record["kind"]
        counts[kind] = counts.get(kind, 0) + 1
        t = record["t"]
        t_min = t if t_min is None or t < t_min else t_min
        t_max = t if t_max is None or t > t_max else t_max
        if kind.endswith(".drop") and "reason" in record:
            reason = str(record["reason"])
            drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    if as_json:
        print(
            json.dumps(
                {
                    "path": path,
                    "format": fmt,
                    "records": total,
                    "t_min": t_min,
                    "t_max": t_max,
                    "kinds": dict(ordered),
                    "drop_reasons": dict(
                        sorted(drop_reasons.items(), key=lambda i: (-i[1], i[0]))
                    ),
                },
                indent=2,
            )
        )
        return 0
    print(f"trace    : {path}")
    print(f"format   : {fmt}")
    print(f"records  : {total}")
    if total:
        print(f"span     : {t_min:.6f} .. {t_max:.6f} s")
        print("kinds    :")
        width = max(len(kind) for kind, _count in ordered)
        for kind, count in ordered:
            print(f"  {kind:<{width}}  {count}")
    if drop_reasons:
        print("drops    :")
        for reason, count in sorted(drop_reasons.items(), key=lambda i: (-i[1], i[0])):
            print(f"  {reason}  {count}")
    return 0


# -- filter ----------------------------------------------------------------


def _matches(
    record: Dict[str, Any],
    kinds: Optional[Sequence[str]],
    since: Optional[float],
    until: Optional[float],
    node: Optional[int],
) -> bool:
    if kinds is not None and record["kind"] not in kinds:
        return False
    t = record["t"]
    if since is not None and t < since:
        return False
    if until is not None and t > until:
        return False
    if node is not None and not any(
        record.get(field) == node for field in _NODE_FIELDS
    ):
        return False
    return True


def _filter(args: argparse.Namespace) -> int:
    render = render_jsonl if args.out_format == "jsonl" else render_text
    kinds = list(args.kind) if args.kind else None
    matched = 0
    for record in iter_records(args.path):
        if _matches(record, kinds, args.since, args.until, args.node):
            print(render(record))
            matched += 1
    print(f"{matched} record(s) matched", file=sys.stderr)
    return 0


# -- timeseries ------------------------------------------------------------


def _timeseries(args: argparse.Namespace) -> int:
    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    wanted: Optional[List[str]] = None
    if args.kinds:
        wanted = [k for k in args.kinds.split(",") if k]
    bins: Dict[int, Dict[str, int]] = {}
    seen_kinds: set = set()
    last_bin = -1
    for record in iter_records(args.path):
        kind = record["kind"]
        if wanted is not None and kind not in wanted:
            continue
        index = int(record["t"] // args.interval)
        row = bins.setdefault(index, {})
        row[kind] = row.get(kind, 0) + 1
        seen_kinds.add(kind)
        last_bin = max(last_bin, index)
    columns = wanted if wanted is not None else sorted(seen_kinds)
    rows: Iterable[int] = range(0, last_bin + 1)
    if args.out_format == "csv":
        print(",".join(["t_start", "t_end", *columns]))
        for index in rows:
            counts = bins.get(index, {})
            cells = [f"{index * args.interval:g}", f"{(index + 1) * args.interval:g}"]
            cells += [str(counts.get(kind, 0)) for kind in columns]
            print(",".join(cells))
        return 0
    if not columns:
        print("no records matched")
        return 0
    widths = [max(len(kind), 8) for kind in columns]
    header = f"{'t_start':>10} {'t_end':>10}  " + " ".join(
        f"{kind:>{w}}" for kind, w in zip(columns, widths)
    )
    print(header)
    for index in rows:
        counts = bins.get(index, {})
        line = f"{index * args.interval:>10g} {(index + 1) * args.interval:>10g}  "
        line += " ".join(
            f"{counts.get(kind, 0):>{w}}" for kind, w in zip(columns, widths)
        )
        print(line)
    return 0


# -- job (fleet span traces) -------------------------------------------------


def _load_job_trace(source: str) -> Dict[str, Any]:
    """Read a job trace document from a file, stdin, or a coordinator URL.

    Accepts the ``GET /v1/jobs/<id>/trace`` document, a bare JSON list of
    span dicts, or span-per-line JSONL; always returns a
    ``{"id", "trace_id", "spans"}``-shaped dict.
    """
    if source == "-":
        text = sys.stdin.read()
    elif source.startswith(("http://", "https://")):
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(source, timeout=30.0) as response:
                text = response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ValueError(f"cannot fetch {source}: {exc}") from exc
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    text = text.strip()
    if not text:
        return {"id": None, "trace_id": None, "spans": []}
    try:
        blob: Any = json.loads(text)
    except ValueError:
        blob = [json.loads(line) for line in text.splitlines() if line.strip()]
    if isinstance(blob, list):
        blob = {"id": None, "trace_id": None, "spans": blob}
    if not isinstance(blob, dict) or not isinstance(blob.get("spans"), list):
        raise ValueError("not a job trace (expected a 'spans' list)")
    spans = [span for span in blob["spans"] if isinstance(span, dict)]
    return {"id": blob.get("id"), "trace_id": blob.get("trace_id"), "spans": spans}


def _gantt_rows(
    spans: List[Dict[str, Any]], width: int, max_spans: int
) -> List[str]:
    from repro.obs.fleet import find_root

    root = find_root(spans)
    if root is None or root.get("end") is None:
        return ["  (no finished root span; nothing to draw)"]
    lo = float(root["start"])
    hi = max(
        [float(root["end"])]
        + [float(s["end"]) for s in spans if s.get("end") is not None]
    )
    wall = max(hi - lo, 1e-9)
    drawn = sorted(
        (s for s in spans if s.get("end") is not None),
        key=lambda s: (float(s.get("start", 0.0)), str(s.get("span_id"))),
    )
    folded = 0
    if len(drawn) > max_spans:
        folded = len(drawn) - max_spans
        drawn = drawn[:max_spans]
    kind_w = max((len(str(s.get("kind", "?"))) for s in drawn), default=4)
    proc_w = max((len(str(s.get("proc", "?"))) for s in drawn), default=4)
    rows = []
    for span in drawn:
        start = float(span.get("start", lo))
        end = float(span["end"])
        left = int(round((max(start, lo) - lo) / wall * width))
        right = int(round((min(end, hi) - lo) / wall * width))
        right = max(right, left + 1)  # a short span still gets one cell
        bar = " " * left + "#" * (right - left) + " " * (width - right)
        rows.append(
            f"  {str(span.get('kind', '?')):<{kind_w}} "
            f"{str(span.get('proc', '?')):<{proc_w}} "
            f"|{bar[:width]}| {end - start:9.4f}s"
        )
    if folded:
        rows.append(f"  ... {folded} more span(s) not drawn (--max-spans)")
    return rows


def _job(args: argparse.Namespace) -> int:
    from repro.obs.fleet import critical_path, trace_breakdown, validate_spans

    doc = _load_job_trace(args.source)
    spans = doc["spans"]
    breakdown = trace_breakdown(spans)
    path = critical_path(spans)
    problems = validate_spans(spans)
    if args.json:
        print(
            json.dumps(
                {
                    "id": doc["id"],
                    "trace_id": doc["trace_id"],
                    "spans": len(spans),
                    "breakdown": breakdown,
                    "critical_path": path,
                    "problems": problems,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    coverage = breakdown["coverage"]
    wall = coverage["root_s"]
    if doc["id"]:
        print(f"job      : {doc['id']}")
    if doc["trace_id"]:
        print(f"trace    : {doc['trace_id']}")
    print(f"spans    : {len(spans)} from {len(coverage['procs'])} process(es): "
          + ", ".join(coverage["procs"]))
    print(f"wall     : {wall:.4f} s   covered: {coverage['covered_s']:.4f} s "
          f"({coverage['coverage']:.1%})")
    for problem in problems:
        print(f"problem  : {problem}")
    if not spans:
        return 0
    width = max(10, args.width)
    print()
    print(f"gantt ({wall:.4f} s wall):")
    for row in _gantt_rows(spans, width, max(1, args.max_spans)):
        print(row)
    print()
    print("where did the time go (by stage):")
    by_kind = breakdown["by_kind"]
    kind_w = max(len(k) for k in by_kind)
    print(f"  {'stage':<{kind_w}}  {'count':>5}  {'total_s':>9}  "
          f"{'busy_s':>9}  {'% wall':>7}")
    for kind, row in sorted(
        by_kind.items(), key=lambda item: (-item[1]["busy_s"], item[0])
    ):
        share = row["busy_s"] / wall if wall > 0 else 0.0
        print(f"  {kind:<{kind_w}}  {int(row['count']):>5}  "
              f"{row['total_s']:>9.4f}  {row['busy_s']:>9.4f}  {share:>7.1%}")
    print()
    print("per process:")
    stragglers = set(breakdown["stragglers"])
    proc_w = max(len(p) for p in breakdown["by_proc"])
    for proc, row in sorted(
        breakdown["by_proc"].items(), key=lambda item: -item[1]["busy_s"]
    ):
        share = row["busy_s"] / wall if wall > 0 else 0.0
        flag = "  <-- straggler" if proc in stragglers else ""
        print(f"  {proc:<{proc_w}}  {int(row['count']):>4} span(s)  "
              f"busy {row['busy_s']:>9.4f}s  ({share:.1%}){flag}")
    print()
    print("critical path (self time explains the wait):")
    for step in path:
        print(f"  {str(step.get('kind', '?')):<14} {str(step.get('proc', '?')):<16} "
              f"{_critical_duration(step):>9.4f}s  self {step['self_s']:>9.4f}s")
    return 0


def _critical_duration(step: Dict[str, Any]) -> float:
    end = step.get("end")
    if end is None:
        return 0.0
    return max(0.0, float(end) - float(step.get("start", 0.0)))


# -- entry point -----------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _summarize(args.path, args.json)
        if args.command == "filter":
            return _filter(args)
        if args.command == "job":
            return _job(args)
        return _timeseries(args)
    except FileNotFoundError as exc:
        print(f"error: {exc.filename}: no such trace file", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: not an error.  Detach
        # stdout so interpreter shutdown does not print a spurious warning.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""One-stop wiring of the observability layer over a built simulation.

``repro-run``'s observability flags and most scripted uses want the same
three attachments; :class:`Observability` bundles them:

    from repro.obs import Observability
    from repro.scenarios.builder import build_simulation

    handle = build_simulation(config)
    obs = Observability(metrics_interval=5.0, profile=True, flight_capacity=256)
    obs.attach(handle)
    result = obs.run(handle)            # dumps flight context on a fault
    obs.interval_metrics.export_jsonl("timeseries.jsonl")
    print(obs.profile_report().format())

Everything is opt-in: a default-constructed ``Observability`` attaches
nothing, and the simulation's metrics are bit-identical whichever subset
is enabled (observation never mutates protocol state or draws randomness).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.obs.flight import FlightRecorder
from repro.obs.interval import IntervalMetrics
from repro.obs.profiler import EngineProfiler, ProfileReport

PathLike = Union[str, Path]


class Observability:
    """Bundle of interval metrics + engine profiler + flight recorder."""

    def __init__(
        self,
        metrics_interval: Optional[float] = None,
        profile: bool = False,
        flight_capacity: Optional[int] = None,
    ) -> None:
        self._metrics_interval = metrics_interval
        self._profile = profile
        self._flight_capacity = flight_capacity
        self.interval_metrics: Optional[IntervalMetrics] = None
        self.profiler: Optional[EngineProfiler] = None
        self.flight: Optional[FlightRecorder] = None
        self._attached = False

    @property
    def enabled(self) -> bool:
        """True if any observation was requested."""
        return bool(
            self._metrics_interval or self._profile or self._flight_capacity
        )

    def attach(self, handle) -> "Observability":
        """Wire the requested observers into a ``SimulationHandle``."""
        if self._attached:
            raise RuntimeError("Observability is already attached")
        self._attached = True
        if self._metrics_interval:
            self.interval_metrics = IntervalMetrics(interval=self._metrics_interval)
            self.interval_metrics.attach(
                handle.sim, handle.tracer, nodes=getattr(handle, "nodes", None)
            )
        if self._profile:
            self.profiler = EngineProfiler(handle.sim).enable()
        if self._flight_capacity:
            self.flight = FlightRecorder(handle.tracer, capacity=self._flight_capacity)
        return self

    def run(self, handle, flight_dump_path: Optional[PathLike] = None):
        """``handle.run()`` with fault context: when the run raises and a
        flight recorder is attached, its ring is dumped to
        ``flight_dump_path`` (when given) before the exception propagates.
        The per-interval timeseries is finalized on success."""
        try:
            result = handle.run()
        except BaseException:
            if self.flight is not None and flight_dump_path is not None:
                self.flight.dump(flight_dump_path)
            raise
        self.finish()
        return result

    def finish(self) -> None:
        """Close the final partial metrics interval (idempotent)."""
        if self.interval_metrics is not None:
            self.interval_metrics.finish()

    def detach(self) -> None:
        """Remove every subscription/hook installed by :meth:`attach`."""
        if self.interval_metrics is not None:
            self.interval_metrics.detach()
        if self.flight is not None:
            self.flight.detach()
        if self.profiler is not None:
            self.profiler.disable()
        self._attached = False

    def profile_report(self) -> Optional[ProfileReport]:
        """The engine profile, or None when profiling was not requested."""
        return self.profiler.report() if self.profiler is not None else None

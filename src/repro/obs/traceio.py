"""Read trace files back: format sniffing and line parsing.

:class:`repro.sim.tracefile.TraceFileWriter` produces two formats; this
module turns either back into ``{"t": float, "kind": str, **fields}``
dicts — the same shape :func:`repro.metrics.replay.iter_trace` yields for
jsonl — so `repro-trace` and offline analyses work on both.

The jsonl format is lossless.  The text format is for humans: values are
re-read by literal-guessing (int, float, bool, None, else string), and
values containing spaces or ``=`` do not survive the round trip — use
jsonl when the trace feeds a tool rather than a person.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

PathLike = Union[str, Path]


def parse_value(text: str) -> Any:
    """Best-effort typed read of a text-format field value."""
    if text == "None":
        return None
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_text_line(line: str) -> Dict[str, Any]:
    """``12.081672 mac.tx node=17 frame_kind=rts`` -> record dict."""
    parts = line.split()
    if len(parts) < 2:
        raise ValueError(f"malformed trace line: {line!r}")
    record: Dict[str, Any] = {"t": float(parts[0]), "kind": parts[1]}
    for chunk in parts[2:]:
        key, sep, value = chunk.partition("=")
        if not sep:
            raise ValueError(f"malformed field {chunk!r} in line: {line!r}")
        record[key] = parse_value(value)
    return record


def sniff_format(path: PathLike) -> str:
    """``"jsonl"`` or ``"text"``, by suffix then first non-empty line."""
    target = Path(path)
    if target.suffix in (".jsonl", ".json"):
        return "jsonl"
    with target.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                return "jsonl" if line.startswith("{") else "text"
    return "text"


def iter_records(path: PathLike, fmt: Optional[str] = None) -> Iterator[Dict[str, Any]]:
    """Yield the records of a trace file in either format.

    Comment lines (leading ``#``, e.g. a flight-recorder header) and blank
    lines are skipped.
    """
    fmt = fmt or sniff_format(path)
    if fmt not in ("text", "jsonl"):
        raise ValueError(f"unknown trace format {fmt!r}")
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield json.loads(line) if fmt == "jsonl" else parse_text_line(line)


def render_text(record: Dict[str, Any]) -> str:
    """Record dict -> one text-format trace line (TraceFileWriter-equal)."""
    fields = " ".join(
        f"{key}={value}"
        for key, value in sorted(record.items())
        if key not in ("t", "kind")
    )
    return f"{record['t']:.6f} {record['kind']} {fields}".rstrip()


def render_jsonl(record: Dict[str, Any]) -> str:
    """Record dict -> one jsonl trace line (TraceFileWriter-equal)."""
    return json.dumps(record, default=str, sort_keys=True)

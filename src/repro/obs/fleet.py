"""Fleet-wide distributed tracing for the simulation service.

One *trace* is the life of one job: submitted to the coordinator, queued,
dispatched (locally or onto the shard board), executed — possibly by
several remote workers — and delivered.  Every stage is a :class:`Span`:
a ``(trace_id, span_id, parent_id, kind, start, end)`` record plus the
process that produced it, so a job's trace is a tree that crosses process
boundaries.  Trace context travels on the existing JSON API as the
``X-Repro-Trace`` header (``trace_id/span_id``): the coordinator hands it
to workers with each shard claim, and worker spans ship back with the
shard completion (or via ``POST /v1/spans``) to merge into the
coordinator's trace.

:class:`FleetTracer` is the per-process span store.  It is deliberately
small and boring: pure in-memory, one ranked lock, an injectable clock
(wall time is serving metadata here, never simulation state), and a hard
``enabled=False`` fast path — a disabled tracer costs one attribute check
per would-be span, which is what keeps the service's tracing-off overhead
inside the <2% budget recorded in ``BENCH_obs.json``.

The second half of the module is pure trace *analysis* — span trees,
interval coverage, critical paths, per-kind/per-process breakdowns — used
by the ``repro-trace job`` CLI, the distributed smoke test's coverage
assertion, and the property tests.  Everything here works on plain span
dicts so journaled and over-the-wire spans need no re-hydration.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.devtools.lockdep import OrderedLock

__all__ = [
    "SPAN_KINDS",
    "TRACE_HEADER",
    "Span",
    "FleetTracer",
    "new_trace_id",
    "new_span_id",
    "format_trace_context",
    "parse_trace_context",
    "span_index",
    "span_children",
    "validate_spans",
    "find_root",
    "union_seconds",
    "trace_coverage",
    "critical_path",
    "trace_breakdown",
]

#: The HTTP header carrying trace context across process boundaries.
TRACE_HEADER = "X-Repro-Trace"

#: The typed stages a job's trace is made of.  ``job`` is the root span
#: (submission to terminal state); the rest are its descendants.
SPAN_KINDS = frozenset(
    {
        "job",
        "submit",
        "queue.wait",
        "dispatch",
        "shard.lease",
        "shard.execute",
        "task.run",
        "cache.lookup",
        "cache.remote",
        "result.deliver",
        "journal.fsync",
    }
)

#: A worker whose busy time exceeds the fleet median by this factor is
#: highlighted as the straggler in breakdowns.
STRAGGLER_FACTOR = 1.5


def new_trace_id() -> str:
    """An opaque trace id (one per job; shared across every process)."""
    return "t-" + uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return uuid.uuid4().hex[:12]


def format_trace_context(trace_id: str, span_id: str) -> str:
    """The ``X-Repro-Trace`` header value: ``trace_id/span_id``."""
    return f"{trace_id}/{span_id}"


def parse_trace_context(value: Optional[str]) -> Optional[Tuple[str, str]]:
    """Parse a header value back into ``(trace_id, parent_span_id)``.

    Junk (empty, missing separator, blank halves) is ``None``, never an
    error: a malformed header means an untraced request, not a failure.
    """
    if not value or not isinstance(value, str):
        return None
    head, sep, tail = value.strip().partition("/")
    if not sep or not head or not tail:
        return None
    return head, tail


@dataclass
class Span:
    """One timed stage of a job, in one process."""

    trace_id: str
    span_id: str
    kind: str
    proc: str  # the process that produced it ("coordinator", worker id…)
    start: float  # wall-clock seconds (serving metadata, never sim state)
    parent_id: Optional[str] = None
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def duration(self) -> float:
        """Seconds between start and end; 0.0 while the span is open."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "kind": self.kind,
            "proc": self.proc,
            "start": self.start,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.end is not None:
            out["end"] = self.end
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, blob: Dict[str, Any]) -> "Span":
        """Rebuild a span from its JSON form; ``ValueError`` on junk."""
        if not isinstance(blob, dict):
            raise ValueError("span record is not an object")
        for key in ("trace_id", "span_id", "kind", "proc"):
            value = blob.get(key)
            if not isinstance(value, str) or not value:
                raise ValueError(f"span record needs a non-empty string {key!r}")
        if not isinstance(blob.get("start"), (int, float)):
            raise ValueError("span record needs a numeric 'start'")
        end = blob.get("end")
        if end is not None and not isinstance(end, (int, float)):
            raise ValueError("span 'end' must be numeric when present")
        parent = blob.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            raise ValueError("span 'parent_id' must be a string when present")
        attrs = blob.get("attrs") or {}
        if not isinstance(attrs, dict):
            raise ValueError("span 'attrs' must be an object when present")
        return cls(
            trace_id=blob["trace_id"],
            span_id=blob["span_id"],
            kind=blob["kind"],
            proc=blob["proc"],
            start=float(blob["start"]),
            parent_id=parent,
            end=None if end is None else float(end),
            attrs=dict(attrs),
        )


class FleetTracer:
    """Per-process span factory and store (thread-safe, bounded).

    ``enabled=False`` turns every :meth:`start`/:meth:`finish` into a
    near-free no-op (spans are neither created nor stored), which is the
    service's tracing-off mode.  ``clock`` is injectable for tests; the
    default reads the host wall clock — spans are serving metadata and
    never feed simulation state.
    """

    def __init__(
        self,
        proc: str,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        max_traces: int = 1024,
        on_finish: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.proc = proc
        self.enabled = enabled
        self._clock = clock if clock is not None else time.time
        self.max_traces = max(1, max_traces)
        self._on_finish = on_finish
        # Rank 45: above the service/board/metrics locks (spans finish
        # while they are held), below the cache/journal I/O locks — the
        # tracer itself never acquires anything while holding this.
        self._lock = OrderedLock("obs.fleet", rank=45, reentrant=False)
        self._spans: Dict[str, List[Span]] = {}  # guarded-by: _lock
        self._order: List[str] = []  # trace insertion order; guarded-by: _lock

    def set_on_finish(self, callback: Optional[Callable[[Span], None]]) -> None:
        """Install the finished-span hook (e.g. per-stage histograms).

        The hook is always invoked *outside* the tracer's lock, so it may
        take lower-ranked locks (the service metrics lock) freely.
        """
        self._on_finish = callback

    # -- producing spans -----------------------------------------------------

    def now(self) -> float:
        return float(self._clock())

    def start(
        self,
        kind: str,
        trace_id: Optional[str],
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a span (not stored until :meth:`finish`); ``None`` when
        disabled or the caller has no trace context."""
        if not self.enabled or not trace_id:
            return None
        if kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind: {kind!r}")
        return Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            kind=kind,
            proc=self.proc,
            start=self.now(),
            parent_id=parent_id,
            attrs=dict(attrs or {}),
        )

    def finish(self, span: Optional[Span], **attrs: Any) -> Optional[Span]:
        """Close and store a span; a ``None`` span is a silent no-op."""
        if span is None:
            return None
        if span.end is None:
            span.end = self.now()
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self._store_locked(span)
        on_finish = self._on_finish  # called outside the lock (rank 40 < 45)
        if on_finish is not None:
            on_finish(span)
        return span

    @contextmanager
    def span(
        self,
        kind: str,
        trace_id: Optional[str],
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Optional[Span]]:
        """``with tracer.span(...) as sp:`` — finishes on exit, recording
        a propagating exception as the span's ``error`` attribute."""
        span = self.start(kind, trace_id, parent_id, attrs)
        try:
            yield span
        except BaseException as exc:
            if span is not None:
                span.attrs["error"] = f"{type(exc).__name__}: {exc}"
            self.finish(span)
            raise
        self.finish(span)

    # -- ingesting finished spans (workers, journal replay) ------------------

    def add_spans(
        self, blobs: Iterable[Dict[str, Any]], record_metrics: bool = True
    ) -> int:
        """Store already-finished span dicts (validated; junk is skipped).

        ``record_metrics=False`` suppresses the ``on_finish`` callback —
        used for journal replay, where spans were already counted by the
        process that produced them.
        """
        if not self.enabled:
            return 0
        accepted: List[Span] = []
        for blob in blobs:
            try:
                accepted.append(Span.from_dict(blob))
            except ValueError:
                continue
        with self._lock:
            for span in accepted:
                self._store_locked(span)
        on_finish = self._on_finish
        if record_metrics and on_finish is not None:
            for span in accepted:
                if span.end is not None:
                    on_finish(span)
        return len(accepted)

    def _store_locked(self, span: Span) -> None:
        spans = self._spans.get(span.trace_id)
        if spans is None:
            spans = self._spans[span.trace_id] = []
            self._order.append(span.trace_id)
            while len(self._order) > self.max_traces:
                evicted = self._order.pop(0)
                self._spans.pop(evicted, None)
        spans.append(span)

    # -- reading -------------------------------------------------------------

    def trace(self, trace_id: str) -> List[Span]:
        """The trace's finished spans, ordered by (start, span_id)."""
        with self._lock:
            spans = list(self._spans.get(trace_id, []))
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def trace_dicts(self, trace_id: str) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.trace(trace_id)]

    def trace_count(self) -> int:
        with self._lock:
            return len(self._spans)

    def discard(self, trace_id: str) -> None:
        with self._lock:
            if trace_id in self._spans:
                del self._spans[trace_id]
                self._order.remove(trace_id)


# -- pure trace analysis -----------------------------------------------------
#
# Everything below operates on plain span dicts (the JSON form), so it
# serves the CLI, the smoke tests and the journal replay equally.


def span_index(spans: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """span_id -> span (last record wins on duplicate ids)."""
    return {str(span.get("span_id")): span for span in spans}


def span_children(
    spans: Iterable[Dict[str, Any]],
) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """parent_id -> children, each list ordered by (start, span_id)."""
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for group in children.values():
        group.sort(key=lambda s: (s.get("start", 0.0), str(s.get("span_id"))))
    return children


def validate_spans(spans: List[Dict[str, Any]]) -> List[str]:
    """Structural problems in a span list: duplicate ids, parent cycles.

    Dangling parents (a parent id no span in the list carries) are *not*
    errors — pre-restart spans legitimately reference a root the crashed
    coordinator never journaled.
    """
    errors: List[str] = []
    seen: Dict[str, int] = {}
    for span in spans:
        span_id = str(span.get("span_id"))
        seen[span_id] = seen.get(span_id, 0) + 1
    for span_id, count in sorted(seen.items()):
        if count > 1:
            errors.append(f"duplicate span_id {span_id!r} ({count} records)")
    index = span_index(spans)
    for span in spans:
        walked: List[str] = []
        node: Optional[Dict[str, Any]] = span
        hops = set()
        while node is not None:
            node_id = str(node.get("span_id"))
            if node_id in hops:
                errors.append(
                    "parent cycle: " + " -> ".join(walked + [node_id])
                )
                break
            hops.add(node_id)
            walked.append(node_id)
            parent = node.get("parent_id")
            node = index.get(parent) if parent is not None else None
    return sorted(set(errors))


def find_root(spans: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The trace's root: a ``job`` span if present, else the longest span
    whose parent is absent from the list."""
    if not spans:
        return None
    jobs = [span for span in spans if span.get("kind") == "job"]
    if jobs:
        return max(jobs, key=_span_duration)
    index = span_index(spans)
    orphans = [
        span for span in spans if span.get("parent_id") not in index
    ]
    return max(orphans or spans, key=_span_duration)


def _span_duration(span: Dict[str, Any]) -> float:
    start = float(span.get("start", 0.0))
    end = span.get("end")
    if end is None:
        return 0.0
    return max(0.0, float(end) - start)


def _span_interval(span: Dict[str, Any]) -> Optional[Tuple[float, float]]:
    end = span.get("end")
    if end is None:
        return None
    start = float(span.get("start", 0.0))
    return (start, max(start, float(end)))


def union_seconds(intervals: Iterable[Tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    merged = sorted((lo, hi) for lo, hi in intervals if hi > lo)
    total = 0.0
    cursor: Optional[float] = None
    high = 0.0
    for lo, hi in merged:
        if cursor is None or lo > high:
            if cursor is not None:
                total += high - cursor
            cursor, high = lo, hi
        else:
            high = max(high, hi)
    if cursor is not None:
        total += high - cursor
    return total


def trace_coverage(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """How much of the root span's wall the other spans account for.

    Returns the root duration, the union-covered seconds (descendant
    intervals clipped to the root window), the coverage fraction, and the
    set of processes that contributed spans — the quantities the
    distributed smoke asserts on (≥2 processes, ≥95% coverage).
    """
    root = find_root(spans)
    procs = sorted({str(s.get("proc", "?")) for s in spans})
    if root is None:
        return {"root_s": 0.0, "covered_s": 0.0, "coverage": 0.0, "procs": procs}
    root_iv = _span_interval(root)
    if root_iv is None or root_iv[1] <= root_iv[0]:
        return {"root_s": 0.0, "covered_s": 0.0, "coverage": 0.0, "procs": procs}
    lo, hi = root_iv
    clipped: List[Tuple[float, float]] = []
    for span in spans:
        if span is root:
            continue
        interval = _span_interval(span)
        if interval is None:
            continue
        clipped.append((max(lo, interval[0]), min(hi, interval[1])))
    covered = union_seconds(clipped)
    root_s = hi - lo
    return {
        "root_s": root_s,
        "covered_s": covered,
        "coverage": covered / root_s,
        "procs": procs,
    }


def critical_path(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Root-to-leaf chain of latest-ending children: the spans that kept
    the job's completion waiting.  Each step is the span dict plus a
    ``self_s`` key — its duration not explained by the next step — so the
    steps' ``self_s`` sum to (approximately) the root's duration."""
    root = find_root(spans)
    if root is None:
        return []
    children = span_children(spans)
    path: List[Dict[str, Any]] = []
    node = root
    visited = set()
    while node is not None:
        node_id = str(node.get("span_id"))
        if node_id in visited:
            break  # defensive: a parent cycle must not hang the CLI
        visited.add(node_id)
        kids = [
            kid for kid in children.get(node_id, []) if kid.get("end") is not None
        ]
        nxt = max(kids, key=lambda kid: float(kid["end"])) if kids else None
        step = dict(node)
        step["self_s"] = max(
            0.0, _span_duration(node) - (_span_duration(nxt) if nxt else 0.0)
        )
        path.append(step)
        node = nxt
    return path


def trace_breakdown(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The "where did the time go" summary of one job trace.

    * ``by_kind`` — per span kind: count, total seconds, busy seconds
      (union of that kind's intervals — overlap-free);
    * ``by_proc`` — per process: span count and busy seconds, with the
      straggler (busy > :data:`STRAGGLER_FACTOR` × median among workers)
      flagged;
    * ``coverage`` — :func:`trace_coverage` of the same spans.
    """
    by_kind: Dict[str, Dict[str, float]] = {}
    by_proc: Dict[str, Dict[str, float]] = {}
    for span in spans:
        kind = str(span.get("kind", "?"))
        proc = str(span.get("proc", "?"))
        duration = _span_duration(span)
        kind_row = by_kind.setdefault(kind, {"count": 0, "total_s": 0.0})
        kind_row["count"] += 1
        kind_row["total_s"] += duration
        proc_row = by_proc.setdefault(proc, {"count": 0, "busy_s": 0.0})
        proc_row["count"] += 1
    for kind, row in by_kind.items():
        intervals = [
            iv
            for span in spans
            if str(span.get("kind")) == kind
            and (iv := _span_interval(span)) is not None
        ]
        row["busy_s"] = union_seconds(intervals)
    for proc, row in by_proc.items():
        intervals = [
            iv
            for span in spans
            if str(span.get("proc", "?")) == proc
            and (iv := _span_interval(span)) is not None
        ]
        row["busy_s"] = union_seconds(intervals)
    workers = {
        proc: row
        for proc, row in by_proc.items()
        if any(
            str(s.get("proc", "?")) == proc and s.get("kind") == "shard.execute"
            for s in spans
        )
    }
    busies = sorted(row["busy_s"] for row in workers.values())
    median = busies[len(busies) // 2] if busies else 0.0
    stragglers = sorted(
        proc
        for proc, row in workers.items()
        if len(workers) > 1 and median > 0 and row["busy_s"] > STRAGGLER_FACTOR * median
    )
    return {
        "by_kind": by_kind,
        "by_proc": by_proc,
        "stragglers": stragglers,
        "coverage": trace_coverage(spans),
    }

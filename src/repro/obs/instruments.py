"""Metrics instruments: Counter, Gauge, Histogram, and their registry.

The instruments live entirely in *virtual* time: they are fed by trace
subscriptions and sampled by simulator events, never by wall clocks, so a
metrics-instrumented run stays a pure function of its scenario (seed
included).  Wall-clock observation belongs to the engine profiler
(:mod:`repro.obs.profiler`), which is a separate, opt-in mechanism.

Snapshots are flat ``{name: value}`` dicts.  Counter and histogram keys are
*monotonic* (non-decreasing over a run), which is what lets
:class:`repro.obs.interval.IntervalMetrics` turn consecutive snapshots into
per-interval deltas; gauge keys are point-in-time samples and are reported
as-is.

Instruments are deliberately **lock-free**: each instance has exactly one
writer (the simulation thread that owns the run), and cross-thread readers
only ever see completed snapshots taken by that writer.  Keeping the hot
path free of locks (and of the lockdep hierarchy in
``docs/architecture.md``) is part of the determinism contract — do not add
synchronisation here; aggregate via snapshots instead, as
``repro.service.metrics`` does.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (events, packets, drops...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}

    def monotonic_keys(self) -> Tuple[str, ...]:
        return (self.name,)


class Gauge:
    """A point-in-time sampled value (queue depth, cache size...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}

    def monotonic_keys(self) -> Tuple[str, ...]:
        return ()


class Histogram:
    """A cumulative-bucket histogram over observed values.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket catches
    the rest.  The snapshot flattens to ``name.count``, ``name.sum`` and one
    cumulative ``name.le.<bound>`` key per finite bucket — all monotonic, so
    interval deltas recover the per-interval distribution.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, buckets: Sequence[Number]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be sorted and unique")
        self.name = name
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)  # +1 for +inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            f"{self.name}.count": float(self.count),
            f"{self.name}.sum": self.sum,
        }
        cumulative = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            out[f"{self.name}.le.{bound:g}"] = float(cumulative)
        return out

    def monotonic_keys(self) -> Tuple[str, ...]:
        return tuple(self.snapshot())


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named, ordered collection of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same instrument, and asking for an existing
    name with a different instrument type raises (silent shadowing would
    split one logical metric across two objects).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, factory, kind) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, buckets: Sequence[Number]) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, buckets), Histogram)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, float]:
        """Flat merged snapshot, keys in instrument registration order."""
        out: Dict[str, float] = {}
        for instrument in self._instruments.values():
            out.update(instrument.snapshot())
        return out

    def monotonic_keys(self) -> Tuple[str, ...]:
        """Snapshot keys that never decrease (counters + histogram keys)."""
        keys: List[str] = []
        for instrument in self._instruments.values():
            keys.extend(instrument.monotonic_keys())
        return tuple(keys)

"""Per-interval protocol timeseries over a running simulation.

:class:`IntervalMetrics` subscribes standard instruments to the tracer and
rides a self-rescheduling simulator event that closes one row per
``interval`` simulated seconds — the equivalent of the per-interval
throughput/overhead timeseries ns-2 analyses script out of trace files.

The snapshot event only *reads* protocol state (and appends to the
registry), never mutates it or draws randomness, so simulation metrics are
bit-identical with the recorder attached or not; the relative order of all
pre-existing events is preserved by the engine's monotonic sequence
numbers.

Each row carries per-interval deltas for counters/histograms, the sampled
value for gauges, and the derived per-interval ``delivery_ratio``
(delivered/originated data packets in that interval; null when nothing was
originated).  Rows export to JSONL or CSV.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.instruments import MetricsRegistry
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceRecord, Tracer

PathLike = Union[str, Path]

#: End-to-end delay buckets (seconds): sub-10ms through 10s.
DEFAULT_DELAY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


class IntervalMetrics:
    """Trace-fed instruments snapshotted every ``interval`` virtual seconds.

    Standard instruments (all fed from public trace kinds):

    ========================  =========================================
    ``data.sent``             originated data packets (``app.send``)
    ``data.received``         first-copy deliveries (``app.recv``)
    ``delay.e2e.*``           end-to-end delay histogram (``app.recv``)
    ``cache.hits``            route-cache hits (``dsr.cache_use``)
    ``cache.stale_hits``      hits on already-dead routes
    ``mac.tx``                MAC frame transmissions (``mac.tx``)
    ``mac.fail``              retry-exhausted unicasts (``mac.fail``)
    ``ifq.drop``              interface-queue drops (``ifq.drop``)
    ``rreq.sent``             route discoveries (``dsr/aodv.rreq_sent``)
    ``link.breaks``           forwarding-time breaks (``*.link_break``)
    ``sendbuf.depth``         gauge: packets waiting for routes
    ========================  =========================================

    Extra instruments may be registered on ``self.registry`` before
    :meth:`attach`; feed them from your own subscriptions.
    """

    def __init__(
        self,
        interval: float = 5.0,
        registry: Optional[MetricsRegistry] = None,
        delay_buckets: Sequence[float] = DEFAULT_DELAY_BUCKETS,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rows: List[Dict[str, Optional[float]]] = []

        reg = self.registry
        self._sent = reg.counter("data.sent")
        self._received = reg.counter("data.received")
        self._delay = reg.histogram("delay.e2e", buckets=delay_buckets)
        self._cache_hits = reg.counter("cache.hits")
        self._cache_stale = reg.counter("cache.stale_hits")
        self._mac_tx = reg.counter("mac.tx")
        self._mac_fail = reg.counter("mac.fail")
        self._ifq_drop = reg.counter("ifq.drop")
        self._rreq = reg.counter("rreq.sent")
        self._breaks = reg.counter("link.breaks")
        self._sendbuf = reg.gauge("sendbuf.depth")

        self._sim: Optional[Simulator] = None
        self._tracer: Optional[Tracer] = None
        self._nodes: Optional[dict] = None
        self._subscriptions: List[Tuple[str, object]] = []
        self._pending: Optional[Event] = None
        self._last_snapshot: Dict[str, float] = {}
        self._last_boundary = 0.0
        self._delivered_uids: set = set()

    # -- lifecycle ---------------------------------------------------------

    def attach(
        self,
        sim: Simulator,
        tracer: Tracer,
        nodes: Optional[dict] = None,
    ) -> "IntervalMetrics":
        """Subscribe the instruments and start the snapshot cadence.

        ``nodes`` (id -> Node, as on a ``SimulationHandle``) enables the
        send-buffer depth gauge; without it the gauge stays 0.
        """
        if self._sim is not None:
            raise RuntimeError("IntervalMetrics is already attached")
        self._sim = sim
        self._tracer = tracer
        self._nodes = nodes
        self._last_boundary = sim.now
        self._last_snapshot = self.registry.snapshot()
        for kind, handler in (
            ("app.send", self._on_app_send),
            ("app.recv", self._on_app_recv),
            ("dsr.cache_use", self._on_cache_use),
            ("mac.tx", self._on_mac_tx),
            ("mac.fail", self._on_mac_fail),
            ("ifq.drop", self._on_ifq_drop),
            ("dsr.rreq_sent", self._on_rreq),
            ("aodv.rreq_sent", self._on_rreq),
            ("dsr.link_break", self._on_link_break),
            ("aodv.link_break", self._on_link_break),
        ):
            tracer.subscribe(kind, handler)
            self._subscriptions.append((kind, handler))
        self._pending = sim.schedule(self.interval, self._tick)
        return self

    def detach(self) -> None:
        """Unsubscribe every handler and cancel the pending snapshot event.

        Idempotent; after detach the tracer carries no leaked callbacks and
        guarded emits for these kinds are free again (unless someone else
        subscribes).
        """
        if self._tracer is not None:
            for kind, handler in self._subscriptions:
                self._tracer.unsubscribe(kind, handler)
            self._subscriptions = []
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._sim = None
        self._tracer = None
        self._nodes = None

    def finish(self) -> List[Dict[str, Optional[float]]]:
        """Close the final (possibly partial) interval and return the rows.

        Call after ``sim.run(...)`` returns; safe to call when the run
        ended exactly on a boundary (no empty row is added).
        """
        if self._sim is not None and self._sim.now > self._last_boundary:
            self._record_row(self._sim.now)
        return self.rows

    # -- trace handlers ----------------------------------------------------

    def _on_app_send(self, record: TraceRecord) -> None:
        self._sent.inc()

    def _on_app_recv(self, record: TraceRecord) -> None:
        # Count first copies only, mirroring MetricsCollector's delivery
        # accounting so interval sums reconcile with the final result.
        uid = record.fields["uid"]
        if uid in self._delivered_uids:
            return
        self._delivered_uids.add(uid)
        self._received.inc()
        self._delay.observe(record.time - record.fields["born"])

    def _on_cache_use(self, record: TraceRecord) -> None:
        self._cache_hits.inc()
        if record.fields.get("valid") is False:
            self._cache_stale.inc()

    def _on_mac_tx(self, record: TraceRecord) -> None:
        self._mac_tx.inc()

    def _on_mac_fail(self, record: TraceRecord) -> None:
        self._mac_fail.inc()

    def _on_ifq_drop(self, record: TraceRecord) -> None:
        self._ifq_drop.inc()

    def _on_rreq(self, record: TraceRecord) -> None:
        self._rreq.inc()

    def _on_link_break(self, record: TraceRecord) -> None:
        self._breaks.inc()

    # -- snapshotting ------------------------------------------------------

    def _sample_gauges(self) -> None:
        if self._nodes is None:
            return
        depth = 0
        for node in self._nodes.values():
            buffer = getattr(getattr(node, "agent", None), "send_buffer", None)
            if buffer is not None:
                depth += len(buffer)
        self._sendbuf.set(depth)

    def _tick(self) -> None:
        assert self._sim is not None
        self._record_row(self._sim.now)
        self._pending = self._sim.schedule(self.interval, self._tick)

    def _record_row(self, t_end: float) -> None:
        self._sample_gauges()
        snapshot = self.registry.snapshot()
        previous = self._last_snapshot
        monotonic = set(self.registry.monotonic_keys())
        row: Dict[str, Optional[float]] = {
            "interval": float(len(self.rows)),
            "t_start": self._last_boundary,
            "t_end": t_end,
        }
        for key, value in snapshot.items():
            row[key] = value - previous.get(key, 0.0) if key in monotonic else value
        sent = row.get("data.sent") or 0.0
        received = row.get("data.received") or 0.0
        row["delivery_ratio"] = (received / sent) if sent > 0 else None
        self.rows.append(row)
        self._last_snapshot = snapshot
        self._last_boundary = t_end

    # -- export ------------------------------------------------------------

    def export_jsonl(self, path: PathLike) -> Path:
        """One JSON object per interval row."""
        target = Path(path)
        with target.open("w") as handle:
            for row in self.rows:
                handle.write(json.dumps(row, sort_keys=False) + "\n")
        return target

    def export_csv(self, path: PathLike) -> Path:
        """CSV with one column per metric (empty cell for null ratios)."""
        target = Path(path)
        fieldnames = list(self.rows[0]) if self.rows else ["interval", "t_start", "t_end"]
        with target.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
        return target

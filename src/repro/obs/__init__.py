"""Observability layer: metrics, profiling, and post-mortem tooling.

Everything here observes the simulation from outside — trace
subscriptions, snapshot events, and an opt-in engine hook — and never
mutates protocol state or draws randomness, so simulation results are
bit-identical with observability on or off (pinned by
``tests/obs/test_identical.py``).

* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — virtual-time instruments.
* :class:`IntervalMetrics` — per-interval protocol timeseries
  (delivery ratio, cache hit/stale rate, MAC failures, send-buffer
  depth...), exportable to JSONL/CSV.
* :class:`EngineProfiler` / :class:`ProfileReport` — wall-clock
  attribution per event callback and component.
* :class:`FlightRecorder` / :class:`FlightRecordingTaskFn` — bounded ring
  of recent trace records, dumped on demand or on a propagating
  exception; the task-fn form arms one per simulation for
  ``repro-worker``/``repro-serve`` post-mortems.
* :class:`Observability` — one-call wiring of the above over a
  ``SimulationHandle``.
* :class:`FleetTracer` / :class:`Span` — fleet-wide distributed tracing
  of service jobs (spans cross process boundaries via the
  ``X-Repro-Trace`` header and merge on the coordinator).
* :class:`StructuredLogger` — JSONL event logging with bound fields,
  shared by ``repro-serve`` and ``repro-worker``.
* :mod:`repro.obs.tracecli` — the ``repro-trace`` inspection CLI over
  ``TraceFileWriter`` artifacts and fleet job traces (``repro-trace job``).
"""

from repro.obs.fleet import (
    SPAN_KINDS,
    TRACE_HEADER,
    FleetTracer,
    Span,
    critical_path,
    trace_breakdown,
    trace_coverage,
)
from repro.obs.flight import FlightRecorder, FlightRecordingTaskFn
from repro.obs.instruments import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.interval import IntervalMetrics
from repro.obs.profiler import ComponentProfile, EngineProfiler, ProfileReport
from repro.obs.session import Observability
from repro.obs.slog import StructuredLogger
from repro.obs.traceio import iter_records, sniff_format

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "IntervalMetrics",
    "EngineProfiler",
    "ProfileReport",
    "ComponentProfile",
    "FlightRecorder",
    "FlightRecordingTaskFn",
    "FleetTracer",
    "Span",
    "SPAN_KINDS",
    "TRACE_HEADER",
    "StructuredLogger",
    "Observability",
    "critical_path",
    "trace_breakdown",
    "trace_coverage",
    "iter_records",
    "sniff_format",
]

"""Observability layer: metrics, profiling, and post-mortem tooling.

Everything here observes the simulation from outside — trace
subscriptions, snapshot events, and an opt-in engine hook — and never
mutates protocol state or draws randomness, so simulation results are
bit-identical with observability on or off (pinned by
``tests/obs/test_identical.py``).

* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — virtual-time instruments.
* :class:`IntervalMetrics` — per-interval protocol timeseries
  (delivery ratio, cache hit/stale rate, MAC failures, send-buffer
  depth...), exportable to JSONL/CSV.
* :class:`EngineProfiler` / :class:`ProfileReport` — wall-clock
  attribution per event callback and component.
* :class:`FlightRecorder` — bounded ring of recent trace records, dumped
  on demand or on a propagating exception.
* :class:`Observability` — one-call wiring of the above over a
  ``SimulationHandle``.
* :mod:`repro.obs.tracecli` — the ``repro-trace`` inspection CLI over
  ``TraceFileWriter`` artifacts.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.instruments import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.interval import IntervalMetrics
from repro.obs.profiler import ComponentProfile, EngineProfiler, ProfileReport
from repro.obs.session import Observability
from repro.obs.traceio import iter_records, sniff_format

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "IntervalMetrics",
    "EngineProfiler",
    "ProfileReport",
    "ComponentProfile",
    "FlightRecorder",
    "Observability",
    "iter_records",
    "sniff_format",
]

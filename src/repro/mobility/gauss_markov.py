"""Gauss-Markov mobility.

Unlike random waypoint — whose sharp turns and stop-go behaviour are often
criticised as unrealistic — Gauss-Markov evolves each node's speed and
heading as a first-order autoregressive process, producing smooth,
temporally correlated motion.  The memory parameter ``alpha`` interpolates
between Brownian motion (``alpha = 0``) and straight-line motion
(``alpha = 1``).

Used by the robustness tests/benchmarks to check that the paper's caching
conclusions are not artefacts of the waypoint model.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory


class GaussMarkovModel(MobilityModel):
    """Gauss-Markov trajectories for ``num_nodes`` nodes.

    Positions update every ``step`` seconds with the classic recursions::

        s_t = alpha s_{t-1} + (1 - alpha) s_mean + sqrt(1 - alpha^2) w_s
        d_t = alpha d_{t-1} + (1 - alpha) d_mean + sqrt(1 - alpha^2) w_d

    Nodes reflect off the field boundary (heading mean flips toward the
    interior near an edge, the standard boundary treatment).
    """

    def __init__(
        self,
        num_nodes: int,
        width: float,
        height: float,
        duration: float,
        rng: np.random.Generator,
        mean_speed: float = 10.0,
        speed_std: float = 3.0,
        direction_std: float = 0.6,
        alpha: float = 0.85,
        step: float = 1.0,
    ):
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if width <= 0 or height <= 0:
            raise ConfigurationError("field dimensions must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError("alpha must be in [0, 1]")
        if mean_speed <= 0 or speed_std < 0 or step <= 0:
            raise ConfigurationError("speed parameters must be positive")

        self.width = width
        self.height = height
        self.mean_speed = mean_speed
        self.alpha = alpha
        self.step = step

        trajectories = {
            node_id: self._generate(rng, duration,
                                    speed_std=speed_std,
                                    direction_std=direction_std)
            for node_id in range(num_nodes)
        }
        super().__init__(trajectories)

    def _generate(
        self,
        rng: np.random.Generator,
        duration: float,
        speed_std: float,
        direction_std: float,
    ) -> Trajectory:
        x = float(rng.uniform(0.0, self.width))
        y = float(rng.uniform(0.0, self.height))
        speed = self.mean_speed
        direction = float(rng.uniform(0.0, 2.0 * math.pi))
        alpha = self.alpha
        noise_scale = math.sqrt(max(0.0, 1.0 - alpha * alpha))
        margin_x = 0.1 * self.width
        margin_y = 0.1 * self.height

        segments: List[Segment] = []
        t = 0.0
        while t <= duration:
            # Mean heading steers toward the interior near the edges.
            mean_direction = direction
            if x < margin_x:
                mean_direction = 0.0
            elif x > self.width - margin_x:
                mean_direction = math.pi
            if y < margin_y:
                mean_direction = math.pi / 2 if x >= margin_x else mean_direction
            elif y > self.height - margin_y:
                mean_direction = -math.pi / 2 if x >= margin_x else mean_direction

            speed = (
                alpha * speed
                + (1.0 - alpha) * self.mean_speed
                + noise_scale * speed_std * float(rng.standard_normal())
            )
            speed = max(0.0, speed)
            direction = (
                alpha * direction
                + (1.0 - alpha) * mean_direction
                + noise_scale * direction_std * float(rng.standard_normal())
            )
            vx = speed * math.cos(direction)
            vy = speed * math.sin(direction)

            # Clip the step so the node cannot exit the field; reflect the
            # heading if it would.
            nx = x + vx * self.step
            ny = y + vy * self.step
            if nx < 0.0 or nx > self.width:
                vx = -vx
                nx = x + vx * self.step
                direction = math.pi - direction
            if ny < 0.0 or ny > self.height:
                vy = -vy
                ny = y + vy * self.step
                direction = -direction
            nx = min(max(nx, 0.0), self.width)
            ny = min(max(ny, 0.0), self.height)

            segments.append(
                Segment(
                    t0=t,
                    x0=x,
                    y0=y,
                    vx=(nx - x) / self.step,
                    vy=(ny - y) / self.step,
                )
            )
            x, y = nx, ny
            t += self.step
        segments.append(Segment(t0=t, x0=x, y0=y, vx=0.0, vy=0.0))
        return Trajectory(segments)

"""The mobility-model interface used by the rest of the simulator."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.mobility.trajectory import Trajectory

Point = Tuple[float, float]


class MobilityModel:
    """Maps node ids to trajectories.

    Concrete models precompute a full trajectory per node at construction
    time (the random waypoint's itinerary is independent of the protocol, so
    nothing is lost by fixing it up front — and it guarantees identical
    mobility across protocol variants, as the paper's methodology requires).
    """

    def __init__(self, trajectories: Dict[int, Trajectory]):
        self._trajectories = dict(trajectories)

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._trajectories)

    def trajectory(self, node_id: int) -> Trajectory:
        return self._trajectories[node_id]

    def position(self, node_id: int, t: float) -> Point:
        """Position of ``node_id`` at simulation time ``t`` (metres)."""
        return self._trajectories[node_id].position(t)

    def distance(self, a: int, b: int, t: float) -> float:
        """Euclidean distance between two nodes at time ``t``."""
        xa, ya = self.position(a, t)
        xb, yb = self.position(b, t)
        return ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5

"""The mobility-model interface used by the rest of the simulator."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mobility.trajectory import Trajectory

Point = Tuple[float, float]


class _TrajectoryPack:
    """All trajectories of a model packed into flat CSR-style arrays.

    ``t0/x0/y0/vx/vy`` concatenate every node's segment fields (node order =
    ``MobilityModel.node_ids``); ``start``/``end`` bound node *i*'s slice.
    ``cursor`` holds each node's current segment index and is advanced
    monotonically — the simulator queries positions at non-decreasing times
    (the neighbour cache samples quantum ticks), so the common case is "no
    segment change" or "advance by one", both O(nodes) vectorized with no
    per-node Python work.  A backwards query resets the cursors and replays,
    which stays correct (just slower), so the API has no monotonicity
    requirement.
    """

    __slots__ = ("t0", "x0", "y0", "vx", "vy", "start", "end", "cursor", "last_t")

    def __init__(self, trajectories: List[Trajectory]):
        arrays = [traj.as_arrays() for traj in trajectories]
        self.t0 = np.concatenate([a[0] for a in arrays])
        self.x0 = np.concatenate([a[1] for a in arrays])
        self.y0 = np.concatenate([a[2] for a in arrays])
        self.vx = np.concatenate([a[3] for a in arrays])
        self.vy = np.concatenate([a[4] for a in arrays])
        counts = np.array([a[0].shape[0] for a in arrays], dtype=np.intp)
        self.end = np.cumsum(counts)
        self.start = self.end - counts
        self.cursor = self.start.copy()
        self.last_t = -np.inf

    def positions(self, t: float) -> np.ndarray:
        if t < self.last_t:
            np.copyto(self.cursor, self.start)
        self.last_t = t
        cursor = self.cursor
        last = self.end - 1
        # Advance each cursor while the *next* segment has already begun
        # (<=, matching bisect_right: at an exact boundary the later segment
        # wins).  Each loop iteration is one vectorized step shared by all
        # nodes; per quantum tick almost every node advances 0 or 1 segments.
        while True:
            nxt = np.minimum(cursor + 1, last)
            advance = (nxt > cursor) & (self.t0[nxt] <= t)
            if not advance.any():
                break
            cursor[advance] += 1
        dt = np.maximum(t - self.t0[cursor], 0.0)
        out = np.empty((cursor.shape[0], 2), dtype=np.float64)
        out[:, 0] = self.x0[cursor] + self.vx[cursor] * dt
        out[:, 1] = self.y0[cursor] + self.vy[cursor] * dt
        return out


class MobilityModel:
    """Maps node ids to trajectories.

    Concrete models precompute a full trajectory per node at construction
    time (the random waypoint's itinerary is independent of the protocol, so
    nothing is lost by fixing it up front — and it guarantees identical
    mobility across protocol variants, as the paper's methodology requires).

    Two query APIs coexist:

    * :meth:`position` — one node, one time; a bisect plus a multiply-add.
    * :meth:`positions` — *all* nodes at one time, vectorized over a packed
      array-of-segments representation.  This is what the per-quantum
      neighbour refresh uses; it produces bit-identical coordinates to the
      per-node path (same segment selection, same IEEE multiply-add).
    """

    def __init__(self, trajectories: Dict[int, Trajectory]):
        self._trajectories = dict(trajectories)
        self._pack: Optional[_TrajectoryPack] = None  # built on first use
        self._speed_bound: Optional[float] = None  # computed on first use

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._trajectories)

    def trajectory(self, node_id: int) -> Trajectory:
        return self._trajectories[node_id]

    def position(self, node_id: int, t: float) -> Point:
        """Position of ``node_id`` at simulation time ``t`` (metres)."""
        return self._trajectories[node_id].position(t)

    def positions(self, t: float) -> np.ndarray:
        """Positions of **all** nodes at time ``t`` as an ``(n, 2)`` array.

        Rows follow :attr:`node_ids` order.  The returned array is freshly
        allocated — callers may keep or mutate it.
        """
        if self._pack is None:
            ids = self.node_ids
            self._pack = _TrajectoryPack([self._trajectories[i] for i in ids])
        return self._pack.positions(t)

    def speed_bound(self) -> float:
        """Largest speed (m/s) any node ever moves at, over all segments.

        Trajectories are piecewise linear, so this bounds every node's
        displacement over any interval: ``|p(t2) - p(t1)| <= bound * |t2 -
        t1|``.  The grid spatial index uses it to decide how long a bucket
        assignment stays valid (:mod:`repro.phy.spatial`); a static layout
        returns 0.0 and is never re-bucketed.
        """
        if self._speed_bound is None:
            if self._pack is None:
                ids = self.node_ids
                self._pack = _TrajectoryPack([self._trajectories[i] for i in ids])
            pack = self._pack
            if pack.vx.size == 0:
                self._speed_bound = 0.0
            else:
                self._speed_bound = float(
                    np.sqrt(np.max(pack.vx * pack.vx + pack.vy * pack.vy))
                )
        return self._speed_bound

    def distance(self, a: int, b: int, t: float) -> float:
        """Euclidean distance between two nodes at time ``t``."""
        xa, ya = self.position(a, t)
        xb, yb = self.position(b, t)
        return ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5

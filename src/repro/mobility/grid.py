"""Deterministic node layouts for tests and examples."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

Point = Tuple[float, float]


def chain_positions(num_nodes: int, spacing: float) -> List[Point]:
    """Nodes in a straight line, ``spacing`` metres apart.

    With spacing just under the radio range this forms an n-hop chain —
    the canonical topology for exercising multi-hop forwarding.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    return [(i * spacing, 0.0) for i in range(num_nodes)]


def grid_positions(rows: int, cols: int, spacing: float) -> List[Point]:
    """Nodes on a ``rows`` x ``cols`` grid, ``spacing`` metres apart."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    return [
        (c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]


def chain_positions_array(num_nodes: int, spacing: float) -> np.ndarray:
    """Vectorized :func:`chain_positions`: an ``(n, 2)`` float64 array."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    out = np.zeros((num_nodes, 2), dtype=np.float64)
    out[:, 0] = np.arange(num_nodes, dtype=np.float64) * spacing
    return out


def grid_positions_array(rows: int, cols: int, spacing: float) -> np.ndarray:
    """Vectorized :func:`grid_positions`: an ``(rows*cols, 2)`` float64 array,
    row-major like the list variant."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    cc, rr = np.meshgrid(
        np.arange(cols, dtype=np.float64), np.arange(rows, dtype=np.float64)
    )
    return np.stack([cc.ravel() * spacing, rr.ravel() * spacing], axis=1)

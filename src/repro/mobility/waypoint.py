"""The random waypoint mobility model.

Each node starts at a uniformly random point in the rectangular field, picks
a uniformly random destination and a speed uniform in
``[min_speed, max_speed]``, travels there in a straight line, pauses for
``pause_time`` seconds, and repeats.  Varying the pause time varies effective
mobility: pause 0 is constant motion, pause >= simulation length is a static
network — exactly the knob the paper's Fig. 2 sweeps.

Note on ``min_speed``: the classic formulation draws speed from U(0, 20]
m/s.  Speeds arbitrarily close to zero produce near-infinite travel times
(the well-known RWP speed-decay pathology), so we clamp at a small positive
``min_speed`` (default 0.1 m/s) — negligible for 500 s runs but numerically
safe.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory


class RandomWaypointModel(MobilityModel):
    """Random-waypoint trajectories for ``num_nodes`` nodes.

    Parameters mirror the paper's setup: a ``width`` x ``height`` field,
    speeds uniform in ``[min_speed, max_speed]`` and a ``pause_time`` between
    legs.  Trajectories are generated up to ``duration`` seconds (plus one
    leg of slack) from the supplied generator, so a fixed seed gives a fixed
    scenario.
    """

    def __init__(
        self,
        num_nodes: int,
        width: float,
        height: float,
        duration: float,
        rng: np.random.Generator,
        max_speed: float = 20.0,
        min_speed: float = 0.1,
        pause_time: float = 0.0,
    ):
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if width <= 0 or height <= 0:
            raise ConfigurationError("field dimensions must be positive")
        if not 0 < min_speed <= max_speed:
            raise ConfigurationError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if pause_time < 0:
            raise ConfigurationError("pause_time cannot be negative")

        self.width = width
        self.height = height
        self.max_speed = max_speed
        self.min_speed = min_speed
        self.pause_time = pause_time
        self.duration = duration

        trajectories = {
            node_id: self._generate(rng) for node_id in range(num_nodes)
        }
        super().__init__(trajectories)

    def _generate(self, rng: np.random.Generator) -> Trajectory:
        segments: List[Segment] = []
        t = 0.0
        x = float(rng.uniform(0.0, self.width))
        y = float(rng.uniform(0.0, self.height))
        # One leg of slack beyond the nominal duration so position queries at
        # exactly `duration` never run off the end of the trajectory.
        while t <= self.duration:
            dest_x = float(rng.uniform(0.0, self.width))
            dest_y = float(rng.uniform(0.0, self.height))
            speed = float(rng.uniform(self.min_speed, self.max_speed))
            dist = ((dest_x - x) ** 2 + (dest_y - y) ** 2) ** 0.5
            if dist < 1e-9:
                travel = 0.0
                vx = vy = 0.0
            else:
                travel = dist / speed
                vx = (dest_x - x) / travel
                vy = (dest_y - y) / travel
            segments.append(Segment(t0=t, x0=x, y0=y, vx=vx, vy=vy))
            t += travel
            x, y = dest_x, dest_y
            if self.pause_time > 0:
                segments.append(Segment(t0=t, x0=x, y0=y, vx=0.0, vy=0.0))
                t += self.pause_time
        # Terminal rest segment: whatever happens after the last generated
        # leg, the node stays put.
        segments.append(Segment(t0=t, x0=x, y0=y, vx=0.0, vy=0.0))
        return Trajectory(segments)

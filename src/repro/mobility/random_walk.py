"""The random walk (random direction) mobility model.

Each node starts at a uniformly random point in the field and, every
``epoch`` seconds, draws a fresh uniformly random heading in [0, 2*pi) and a
speed uniform in ``[min_speed, max_speed]``, then walks in that direction
until the epoch ends, reflecting off the field boundary (angle of incidence
= angle of reflection, the classic billiard walk).

Unlike random waypoint, the walk has no central-bias pathology — node
density stays uniform over the field and the speed distribution does not
decay over time (the RWP artefacts studied in arXiv:1104.2368) — so it is
the natural second point in any mobility-sensitivity sweep.

Trajectories are piecewise linear: each epoch contributes one segment, plus
one extra segment per wall bounce.  That keeps the lazy vectorized
``positions(t)`` contract and the packed-segment ``speed_bound()`` of
:class:`~repro.mobility.base.MobilityModel` working unchanged, which is what
the per-quantum neighbour refresh and the grid spatial index rely on.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory

# Slack below which a residual epoch remainder is not worth a segment;
# also the guard against zero-length bounce segments when a node is drawn
# exactly on (or lands exactly on) a wall.
_EPS = 1e-12


class RandomWalkModel(MobilityModel):
    """Boundary-reflecting random-walk trajectories for ``num_nodes`` nodes.

    Parameters mirror :class:`~repro.mobility.waypoint.RandomWaypointModel`
    where they overlap; ``epoch`` is the time between heading redraws
    (``ScenarioConfig.walk_epoch``).  Trajectories are generated up to
    ``duration`` seconds plus one epoch of slack from the supplied
    generator, so a fixed seed gives a fixed scenario.
    """

    def __init__(
        self,
        num_nodes: int,
        width: float,
        height: float,
        duration: float,
        rng: np.random.Generator,
        max_speed: float = 20.0,
        min_speed: float = 0.1,
        epoch: float = 10.0,
    ):
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if width <= 0 or height <= 0:
            raise ConfigurationError("field dimensions must be positive")
        if not 0 < min_speed <= max_speed:
            raise ConfigurationError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if epoch <= 0:
            raise ConfigurationError("epoch must be positive")

        self.width = width
        self.height = height
        self.max_speed = max_speed
        self.min_speed = min_speed
        self.epoch = epoch
        self.duration = duration

        trajectories = {
            node_id: self._generate(rng) for node_id in range(num_nodes)
        }
        super().__init__(trajectories)

    def _generate(self, rng: np.random.Generator) -> Trajectory:
        segments: List[Segment] = []
        t = 0.0
        x = float(rng.uniform(0.0, self.width))
        y = float(rng.uniform(0.0, self.height))
        # One epoch of slack beyond the nominal duration so position queries
        # at exactly `duration` never run off the end of the trajectory.
        while t <= self.duration:
            heading = float(rng.uniform(0.0, 2.0 * math.pi))
            speed = float(rng.uniform(self.min_speed, self.max_speed))
            vx = speed * math.cos(heading)
            vy = speed * math.sin(heading)
            remaining = self.epoch
            while remaining > _EPS:
                hit_x, hit_y = self._wall_times(x, y, vx, vy)
                hit = min(hit_x, hit_y)
                if hit >= remaining:
                    # Epoch ends in open field: one segment, no bounce.
                    segments.append(Segment(t0=t, x0=x, y0=y, vx=vx, vy=vy))
                    x += vx * remaining
                    y += vy * remaining
                    t += remaining
                    break
                if hit > _EPS:
                    segments.append(Segment(t0=t, x0=x, y0=y, vx=vx, vy=vy))
                    t += hit
                    remaining -= hit
                # Snap exactly onto the binding wall(s) and reflect.  hit may
                # be ~0 (drawn on a wall heading outward); the snap + flip
                # guarantees progress either way — after at most two flips
                # both components point inward and the next hit is strictly
                # positive.
                x += vx * hit
                y += vy * hit
                if hit_x <= hit:
                    x = 0.0 if vx < 0 else self.width
                    vx = -vx
                if hit_y <= hit:
                    y = 0.0 if vy < 0 else self.height
                    vy = -vy
                x = min(max(x, 0.0), self.width)
                y = min(max(y, 0.0), self.height)
        segments.append(Segment(t0=t, x0=x, y0=y, vx=0.0, vy=0.0))
        return Trajectory(segments)

    def _wall_times(self, x: float, y: float, vx: float, vy: float):
        """Travel times until the walk crosses a vertical / horizontal wall."""
        hit_x = math.inf
        if vx > 0:
            hit_x = (self.width - x) / vx
        elif vx < 0:
            hit_x = -x / vx
        hit_y = math.inf
        if vy > 0:
            hit_y = (self.height - y) / vy
        elif vy < 0:
            hit_y = -y / vy
        return hit_x, hit_y

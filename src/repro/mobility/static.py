"""A mobility model for networks that do not move."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Trajectory


class StaticModel(MobilityModel):
    """Fixed node positions — handy for unit tests and topology studies."""

    def __init__(self, positions: Sequence[Tuple[float, float]]):
        trajectories: Dict[int, Trajectory] = {
            node_id: Trajectory.stationary(x, y)
            for node_id, (x, y) in enumerate(positions)
        }
        super().__init__(trajectories)

    @classmethod
    def from_mapping(cls, mapping: Dict[int, Tuple[float, float]]) -> "StaticModel":
        model = cls.__new__(cls)
        MobilityModel.__init__(
            model,
            {nid: Trajectory.stationary(x, y) for nid, (x, y) in mapping.items()},
        )
        return model

"""A mobility model for networks that do not move."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Trajectory


class StaticModel(MobilityModel):
    """Fixed node positions — handy for unit tests and topology studies."""

    def __init__(self, positions: Sequence[Tuple[float, float]]):
        trajectories: Dict[int, Trajectory] = {
            node_id: Trajectory.stationary(x, y)
            for node_id, (x, y) in enumerate(positions)
        }
        super().__init__(trajectories)
        self._static_positions: Optional[np.ndarray] = None

    @classmethod
    def from_mapping(cls, mapping: Dict[int, Tuple[float, float]]) -> "StaticModel":
        model = cls.__new__(cls)
        MobilityModel.__init__(
            model,
            {nid: Trajectory.stationary(x, y) for nid, (x, y) in mapping.items()},
        )
        model._static_positions = None
        return model

    def positions(self, t: float) -> np.ndarray:
        """Time-independent fast path: the layout never changes, so the
        batched query is a cached-array copy instead of segment evaluation."""
        if self._static_positions is None:
            self._static_positions = np.array(
                [self.position(node_id, 0.0) for node_id in self.node_ids],
                dtype=np.float64,
            ).reshape(-1, 2)
        return self._static_positions.copy()

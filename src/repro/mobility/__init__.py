"""Node mobility models.

The paper uses the *random waypoint* model in a 2200 m x 600 m rectangle with
speeds uniform in (0, 20] m/s and a configurable pause time.  We reproduce
that model exactly, plus static and deterministic layouts used by the tests.

Positions are represented as piecewise-linear :class:`Trajectory` objects so
that the channel can evaluate any node's position at any instant in O(log
segments) without per-tick position updates.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.mobility.waypoint import RandomWaypointModel
from repro.mobility.random_walk import RandomWalkModel
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.rpgm import ReferencePointGroupModel
from repro.mobility.static import StaticModel
from repro.mobility.grid import chain_positions, grid_positions
from repro.mobility.ns2 import export_ns2, load_ns2_movements, parse_ns2_movements

__all__ = [
    "MobilityModel",
    "Segment",
    "Trajectory",
    "RandomWaypointModel",
    "RandomWalkModel",
    "GaussMarkovModel",
    "ReferencePointGroupModel",
    "StaticModel",
    "chain_positions",
    "grid_positions",
    "parse_ns2_movements",
    "load_ns2_movements",
    "export_ns2",
]

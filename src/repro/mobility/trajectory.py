"""Piecewise-linear trajectories.

A :class:`Trajectory` is an ordered list of :class:`Segment` objects, each
describing constant-velocity motion starting at a known time and position.
Evaluating a position at time ``t`` is a binary search plus one multiply-add,
so the channel can ask for positions on every frame transmission cheaply.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

Point = Tuple[float, float]


@dataclass(frozen=True)
class Segment:
    """Constant-velocity motion from ``start`` beginning at ``t0``.

    ``vx``/``vy`` are in metres per second.  The segment is open-ended; the
    next segment's ``t0`` bounds it.
    """

    t0: float
    x0: float
    y0: float
    vx: float
    vy: float

    def position(self, t: float) -> Point:
        dt = t - self.t0
        return (self.x0 + self.vx * dt, self.y0 + self.vy * dt)


class Trajectory:
    """An immutable, time-ordered sequence of motion segments."""

    def __init__(self, segments: List[Segment]):
        if not segments:
            raise ValueError("a trajectory needs at least one segment")
        for earlier, later in zip(segments, segments[1:]):
            if later.t0 < earlier.t0:
                raise ValueError("trajectory segments must be time-ordered")
        self._segments = list(segments)
        self._starts = [seg.t0 for seg in self._segments]
        self._arrays: Tuple[np.ndarray, ...] | None = None  # built lazily

    @classmethod
    def stationary(cls, x: float, y: float, t0: float = 0.0) -> "Trajectory":
        """A trajectory that never moves."""
        return cls([Segment(t0=t0, x0=x, y0=y, vx=0.0, vy=0.0)])

    @property
    def segments(self) -> List[Segment]:
        return list(self._segments)

    def position(self, t: float) -> Point:
        """Position at time ``t``.

        Before the first segment the node sits at the first segment's start;
        after the last segment it follows that segment's velocity (callers
        are expected to build trajectories covering the whole run, ending in
        a zero-velocity segment).
        """
        first = self._segments[0]
        if t <= first.t0:
            return (first.x0, first.y0)
        index = bisect_right(self._starts, t) - 1
        return self._segments[index].position(t)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Segment fields as parallel float64 arrays ``(t0, x0, y0, vx, vy)``.

        Built once and cached — this is the representation the vectorized
        position evaluators (:meth:`positions_at` and
        :meth:`repro.mobility.base.MobilityModel.positions`) work on.
        """
        if self._arrays is None:
            segs = self._segments
            self._arrays = (
                np.array([s.t0 for s in segs], dtype=np.float64),
                np.array([s.x0 for s in segs], dtype=np.float64),
                np.array([s.y0 for s in segs], dtype=np.float64),
                np.array([s.vx for s in segs], dtype=np.float64),
                np.array([s.vy for s in segs], dtype=np.float64),
            )
        return self._arrays

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`position` over an array of query times.

        Returns an ``(len(times), 2)`` array.  Exactly equivalent to calling
        :meth:`position` per time (same segment selection via right-bisect,
        same multiply-add), evaluated with one ``searchsorted`` instead of a
        Python loop per query.
        """
        t0, x0, y0, vx, vy = self.as_arrays()
        times = np.asarray(times, dtype=np.float64)
        index = np.searchsorted(t0, times, side="right") - 1
        np.clip(index, 0, None, out=index)
        # Before the first segment the node sits at the first segment's
        # start: clamping dt at zero reproduces that.
        dt = np.maximum(times - t0[index], 0.0)
        out = np.empty((times.shape[0], 2), dtype=np.float64)
        out[:, 0] = x0[index] + vx[index] * dt
        out[:, 1] = y0[index] + vy[index] * dt
        return out

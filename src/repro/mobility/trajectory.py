"""Piecewise-linear trajectories.

A :class:`Trajectory` is an ordered list of :class:`Segment` objects, each
describing constant-velocity motion starting at a known time and position.
Evaluating a position at time ``t`` is a binary search plus one multiply-add,
so the channel can ask for positions on every frame transmission cheaply.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class Segment:
    """Constant-velocity motion from ``start`` beginning at ``t0``.

    ``vx``/``vy`` are in metres per second.  The segment is open-ended; the
    next segment's ``t0`` bounds it.
    """

    t0: float
    x0: float
    y0: float
    vx: float
    vy: float

    def position(self, t: float) -> Point:
        dt = t - self.t0
        return (self.x0 + self.vx * dt, self.y0 + self.vy * dt)


class Trajectory:
    """An immutable, time-ordered sequence of motion segments."""

    def __init__(self, segments: List[Segment]):
        if not segments:
            raise ValueError("a trajectory needs at least one segment")
        for earlier, later in zip(segments, segments[1:]):
            if later.t0 < earlier.t0:
                raise ValueError("trajectory segments must be time-ordered")
        self._segments = list(segments)
        self._starts = [seg.t0 for seg in self._segments]

    @classmethod
    def stationary(cls, x: float, y: float, t0: float = 0.0) -> "Trajectory":
        """A trajectory that never moves."""
        return cls([Segment(t0=t0, x0=x, y0=y, vx=0.0, vy=0.0)])

    @property
    def segments(self) -> List[Segment]:
        return list(self._segments)

    def position(self, t: float) -> Point:
        """Position at time ``t``.

        Before the first segment the node sits at the first segment's start;
        after the last segment it follows that segment's velocity (callers
        are expected to build trajectories covering the whole run, ending in
        a zero-velocity segment).
        """
        first = self._segments[0]
        if t <= first.t0:
            return (first.x0, first.y0)
        index = bisect_right(self._starts, t) - 1
        return self._segments[index].position(t)

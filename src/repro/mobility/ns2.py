"""Import ns-2 / setdest movement scenarios.

The CMU Monarch toolchain (used by the paper) generated mobility scenarios
with ``setdest`` and stored them as Tcl fragments:

    $node_(0) set X_ 83.66
    $node_(0) set Y_ 239.44
    $ns_ at 2.35 "$node_(0) setdest 150.0 80.0 12.5"

This module parses that format into our trajectory representation, so the
very scenario files a 2001 study shipped can drive this simulator.  The
inverse, :func:`export_ns2`, writes any of our mobility models back out.

Semantics follow setdest: a node rests at its initial position until its
first movement command; each ``setdest x y speed`` starts straight-line
motion toward (x, y) at ``speed`` m/s; a command issued mid-leg redirects
from the current (interpolated) position; after arriving, the node rests
until the next command.
"""

from __future__ import annotations

import math
import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory

PathLike = Union[str, Path]

_INITIAL = re.compile(
    r'\$node_\((\d+)\)\s+set\s+([XYZ])_\s+([0-9.eE+-]+)'
)
_SETDEST = re.compile(
    r'\$ns_?\s+at\s+([0-9.eE+-]+)\s+"\$node_\((\d+)\)\s+setdest\s+'
    r"([0-9.eE+-]+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)"
)


def parse_ns2_movements(text: str, duration: float) -> MobilityModel:
    """Build a :class:`MobilityModel` from setdest-format scenario text."""
    initial: Dict[int, Dict[str, float]] = {}
    commands: Dict[int, List[Tuple[float, float, float, float]]] = {}

    for match in _INITIAL.finditer(text):
        node_id, axis, value = int(match.group(1)), match.group(2), float(match.group(3))
        initial.setdefault(node_id, {})[axis] = value
    for match in _SETDEST.finditer(text):
        at = float(match.group(1))
        node_id = int(match.group(2))
        x, y, speed = (float(match.group(i)) for i in (3, 4, 5))
        commands.setdefault(node_id, []).append((at, x, y, speed))

    if not initial:
        raise ConfigurationError("no initial node positions found in scenario text")

    trajectories: Dict[int, Trajectory] = {}
    for node_id, axes in initial.items():
        if "X" not in axes or "Y" not in axes:
            raise ConfigurationError(f"node {node_id} lacks an initial X/Y position")
        trajectories[node_id] = _build_trajectory(
            axes["X"], axes["Y"], sorted(commands.get(node_id, [])), duration
        )
    return MobilityModel(trajectories)


def _build_trajectory(
    x: float,
    y: float,
    commands: List[Tuple[float, float, float, float]],
    duration: float,
) -> Trajectory:
    segments: List[Segment] = [Segment(t0=0.0, x0=x, y0=y, vx=0.0, vy=0.0)]

    for at, dest_x, dest_y, speed in commands:
        if at > duration:
            break
        # A new command supersedes anything scheduled at or after it (the
        # pending rest-at-destination, or legs a later command replaced).
        while len(segments) > 1 and segments[-1].t0 >= at:
            segments.pop()
        # Each leg is followed by a rest segment at its destination, so the
        # last segment interpolates correctly whether the node is mid-leg
        # or resting.
        here_x, here_y = segments[-1].position(at)
        distance = math.hypot(dest_x - here_x, dest_y - here_y)
        if speed <= 0 or distance < 1e-9:
            segments.append(Segment(t0=at, x0=here_x, y0=here_y, vx=0.0, vy=0.0))
            continue
        travel = distance / speed
        segments.append(
            Segment(
                t0=at,
                x0=here_x,
                y0=here_y,
                vx=(dest_x - here_x) / travel,
                vy=(dest_y - here_y) / travel,
            )
        )
        segments.append(
            Segment(t0=at + travel, x0=dest_x, y0=dest_y, vx=0.0, vy=0.0)
        )
    return Trajectory(segments)


def load_ns2_movements(path: PathLike, duration: float) -> MobilityModel:
    """Parse a setdest scenario file from disk."""
    return parse_ns2_movements(Path(path).read_text(), duration)


def export_ns2(
    mobility: MobilityModel,
    duration: float,
    step: float = 0.5,
) -> str:
    """Write any mobility model as setdest commands (sampled waypoints).

    Trajectories are converted to per-``step`` setdest commands — lossless
    for piecewise-linear models sampled at their own resolution, and a
    faithful approximation otherwise.
    """
    lines: List[str] = []
    for node_id in mobility.node_ids:
        x, y = mobility.position(node_id, 0.0)
        lines.append(f"$node_({node_id}) set X_ {x:.4f}")
        lines.append(f"$node_({node_id}) set Y_ {y:.4f}")
        lines.append(f"$node_({node_id}) set Z_ 0.0000")
    times = [round(i * step, 6) for i in range(1, int(duration / step) + 1)]
    sample_times = np.array([0.0] + times, dtype=np.float64)
    for node_id in mobility.node_ids:
        # One vectorized trajectory sweep per node instead of a bisect per
        # sample; values are identical to per-call position().
        samples = mobility.trajectory(node_id).positions_at(sample_times)
        prev_x, prev_y = samples[0]
        for i, t in enumerate(times, start=1):
            x, y = samples[i]
            speed = math.hypot(x - prev_x, y - prev_y) / step
            if speed > 1e-6:
                lines.append(
                    f'$ns_ at {t - step:.6f} "$node_({node_id}) setdest '
                    f'{x:.4f} {y:.4f} {speed:.4f}"'
                )
            prev_x, prev_y = x, y
    return "\n".join(lines) + "\n"

"""Reference Point Group Mobility (RPGM).

Nodes move in groups: each group follows a logical centre that performs
random waypoint motion, while members hover around their own *reference
point* — a fixed offset from the centre — with bounded random deviation.
Group mobility stresses route caches differently from independent motion:
links *within* a group are long-lived while links *between* groups churn,
so cached intra-group routes stay good and inter-group routes go stale in
bursts (exactly the bursty-break pattern the paper's adaptive timeout
targets).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.mobility.waypoint import RandomWaypointModel


class ReferencePointGroupModel(MobilityModel):
    """RPGM over a rectangular field.

    ``num_nodes`` are split as evenly as possible into ``num_groups``.
    Group centres perform random waypoint (speed up to ``max_speed``,
    ``pause_time`` pauses); each member tracks its reference point with a
    uniform random deviation of at most ``deviation`` metres, re-drawn every
    ``step`` seconds (linear interpolation in between).
    """

    def __init__(
        self,
        num_nodes: int,
        width: float,
        height: float,
        duration: float,
        rng: np.random.Generator,
        num_groups: int = 4,
        group_radius: float = 100.0,
        deviation: float = 30.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
        step: float = 1.0,
    ):
        if num_nodes <= 0 or num_groups <= 0:
            raise ConfigurationError("num_nodes and num_groups must be positive")
        if num_groups > num_nodes:
            raise ConfigurationError("more groups than nodes")
        if group_radius <= 0 or deviation < 0 or step <= 0:
            raise ConfigurationError("geometry parameters must be positive")

        self.width = width
        self.height = height
        self.num_groups = num_groups

        # Group centres: reuse the random-waypoint generator (one "node"
        # per group), so centre motion matches the paper's mobility style.
        centres = RandomWaypointModel(
            num_nodes=num_groups,
            width=width,
            height=height,
            duration=duration,
            rng=rng,
            max_speed=max_speed,
            pause_time=pause_time,
        )

        self.group_of = {
            node_id: node_id % num_groups for node_id in range(num_nodes)
        }
        trajectories = {}
        for node_id in range(num_nodes):
            group = self.group_of[node_id]
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            radius = float(rng.uniform(0.0, group_radius))
            offset = (radius * math.cos(angle), radius * math.sin(angle))
            trajectories[node_id] = self._member_trajectory(
                centres.trajectory(group), offset, deviation, duration, step, rng
            )
        super().__init__(trajectories)

    def _member_trajectory(
        self,
        centre: Trajectory,
        offset: tuple,
        deviation: float,
        duration: float,
        step: float,
        rng: np.random.Generator,
    ) -> Trajectory:
        segments: List[Segment] = []
        t = 0.0
        x, y = self._member_position(centre, offset, deviation, t, rng)
        while t <= duration:
            nt = t + step
            nx, ny = self._member_position(centre, offset, deviation, nt, rng)
            segments.append(
                Segment(t0=t, x0=x, y0=y, vx=(nx - x) / step, vy=(ny - y) / step)
            )
            x, y, t = nx, ny, nt
        segments.append(Segment(t0=t, x0=x, y0=y, vx=0.0, vy=0.0))
        return Trajectory(segments)

    def _member_position(self, centre, offset, deviation, t, rng):
        cx, cy = centre.position(t)
        dx = float(rng.uniform(-deviation, deviation)) if deviation > 0 else 0.0
        dy = float(rng.uniform(-deviation, deviation)) if deviation > 0 else 0.0
        x = min(max(cx + offset[0] + dx, 0.0), self.width)
        y = min(max(cy + offset[1] + dy, 0.0), self.height)
        return x, y

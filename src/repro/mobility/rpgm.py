"""Reference Point Group Mobility (RPGM).

Nodes move in groups: each group follows a logical centre that performs
random waypoint motion, while members hover around their own *reference
point* — a fixed offset from the centre — with bounded random deviation.
Group mobility stresses route caches differently from independent motion:
links *within* a group are long-lived while links *between* groups churn,
so cached intra-group routes stay good and inter-group routes go stale in
bursts (exactly the bursty-break pattern the paper's adaptive timeout
targets).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.mobility.waypoint import RandomWaypointModel


class ReferencePointGroupModel(MobilityModel):
    """RPGM over a rectangular field.

    ``num_nodes`` are split as evenly as possible into ``num_groups``.
    Group centres perform random waypoint (speed up to ``max_speed``,
    ``pause_time`` pauses); each member tracks its reference point with a
    uniform random deviation of at most ``deviation`` metres, re-drawn every
    ``step`` seconds (linear interpolation in between).
    """

    def __init__(
        self,
        num_nodes: int,
        width: float,
        height: float,
        duration: float,
        rng: np.random.Generator,
        num_groups: int = 4,
        group_radius: float = 100.0,
        deviation: float = 30.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
        step: float = 1.0,
    ):
        if num_nodes <= 0 or num_groups <= 0:
            raise ConfigurationError("num_nodes and num_groups must be positive")
        if num_groups > num_nodes:
            raise ConfigurationError("more groups than nodes")
        if group_radius <= 0 or deviation < 0 or step <= 0:
            raise ConfigurationError("geometry parameters must be positive")

        self.width = width
        self.height = height
        self.num_groups = num_groups

        # Group centres: reuse the random-waypoint generator (one "node"
        # per group), so centre motion matches the paper's mobility style.
        centres = RandomWaypointModel(
            num_nodes=num_groups,
            width=width,
            height=height,
            duration=duration,
            rng=rng,
            max_speed=max_speed,
            pause_time=pause_time,
        )

        self.group_of = {
            node_id: node_id % num_groups for node_id in range(num_nodes)
        }
        # Sample instants accumulate exactly as the per-step loop used to
        # (t += step), so the trajectories are bit-identical to the old
        # scalar construction for a given seed.
        times: List[float] = [0.0]
        t = 0.0
        while t <= duration:
            t = t + step
            times.append(t)
        times_array = np.array(times, dtype=np.float64)
        # Each group's centre track is sampled once, vectorized, and shared
        # by all members (the old code re-bisected it per member per step).
        centre_samples = {
            group: centres.trajectory(group).positions_at(times_array)
            for group in range(num_groups)
        }
        trajectories = {}
        for node_id in range(num_nodes):
            group = self.group_of[node_id]
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            radius = float(rng.uniform(0.0, group_radius))
            offset = (radius * math.cos(angle), radius * math.sin(angle))
            trajectories[node_id] = self._member_trajectory(
                centre_samples[group], times, offset, deviation, step, rng
            )
        super().__init__(trajectories)

    def _member_trajectory(
        self,
        centre_xy: np.ndarray,
        times: List[float],
        offset: tuple,
        deviation: float,
        step: float,
        rng: np.random.Generator,
    ) -> Trajectory:
        count = len(times)
        if deviation > 0:
            # One batched draw per member: numpy fills row-major, which is
            # the same generator stream order as the old per-step scalar
            # (dx, dy) pairs — identical deviations for identical seeds.
            devs = rng.uniform(-deviation, deviation, size=(count, 2))
        else:
            devs = np.zeros((count, 2))
        xs = np.clip((centre_xy[:, 0] + offset[0]) + devs[:, 0], 0.0, self.width)
        ys = np.clip((centre_xy[:, 1] + offset[1]) + devs[:, 1], 0.0, self.height)
        segments: List[Segment] = [
            Segment(
                t0=times[k],
                x0=xs[k],
                y0=ys[k],
                vx=(xs[k + 1] - xs[k]) / step,
                vy=(ys[k + 1] - ys[k]) / step,
            )
            for k in range(count - 1)
        ]
        segments.append(
            Segment(t0=times[-1], x0=xs[-1], y0=ys[-1], vx=0.0, vy=0.0)
        )
        return Trajectory(segments)

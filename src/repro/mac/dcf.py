"""A CSMA/CA MAC modelled on the IEEE 802.11 distributed coordination
function (DCF).

Simplifications relative to the full standard, none of which affect the
phenomena the paper studies:

* backoff is tracked as continuous remaining time rather than aligned slot
  boundaries (pause/resume semantics are preserved);
* a single retry counter per packet (default limit 7) instead of separate
  short/long counters;
* SIFS responses (CTS, ACK) are always attempted unless the radio is mid
  transmission.

The crucial behaviour for DSR — **link-layer failure feedback** — is exact:
when the retry limit is exhausted for a unicast packet, the MAC reports the
failed packet and next hop to the routing layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.mac.frames import Frame, FrameKind
from repro.mac.ifq import InterfaceQueue
from repro.mac.timing import MacTiming
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.sim.trace import Tracer


class _Attempt:
    """The unicast (or broadcast) currently being worked on."""

    __slots__ = ("packet", "next_hop", "retries", "seq")

    def __init__(self, packet: Packet, next_hop: int, seq: int):
        self.packet = packet
        self.next_hop = next_hop
        self.retries = 0
        self.seq = seq


class DcfMac:
    """Per-node DCF MAC instance.

    Upper-layer wiring (set by :class:`repro.net.node.Node`):

    * ``deliver(packet)`` — a decoded network packet addressed to this node
      (or broadcast).
    * ``promiscuous(packet)`` — an overheard data frame destined elsewhere.
    * ``on_unicast_success(packet, next_hop)`` — ACK received.
    * ``on_unicast_failure(packet, next_hop)`` — retry limit exhausted; this
      is DSR's link-break feedback.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rng: np.random.Generator,
        timing: Optional[MacTiming] = None,
        tracer: Optional[Tracer] = None,
        queue_capacity: int = 50,
    ):
        self.node_id = node_id
        self._sim = sim
        self._radio = radio
        self._rng = rng
        self.timing = timing or MacTiming()
        self._tracer = tracer or Tracer()
        self.queue = InterfaceQueue(queue_capacity)
        radio.mac = self
        # Tell the radio it can skip medium-change callbacks while we have
        # no transmit attempt in flight (see Radio.mac_idle); kept exactly
        # in sync with ``_current`` below.
        radio.mac_idle = True

        # Upper-layer callbacks (wired by the node).
        self.deliver: Callable[[Packet], None] = lambda packet: None
        self.promiscuous: Callable[[Packet], None] = lambda packet: None
        self.on_unicast_success: Callable[[Packet, int], None] = (
            lambda packet, next_hop: None
        )
        self.on_unicast_failure: Callable[[Packet, int], None] = (
            lambda packet, next_hop: None
        )

        self._current: Optional[_Attempt] = None
        self._awaiting: Optional[str] = None  # 'cts' | 'ack'
        self._cw = self.timing.cw_min
        self._backoff_remaining = 0.0
        self._defer_started: Optional[float] = None
        self._defer_ifs = self.timing.difs  # IFS in force for the current defer
        self._eifs_pending = False
        self._defer_timer = Timer(sim, self._defer_expired)
        self._response_timer = Timer(sim, self._response_timeout)
        self._nav_until = 0.0
        self._seq = 0
        self._last_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Upper-layer entry point
    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet, next_hop: int) -> bool:
        """Queue a packet for transmission to ``next_hop`` (MAC address).

        Returns False if the interface queue dropped it.
        """
        accepted = self.queue.push(packet, next_hop)
        if not accepted and self._tracer.wants("ifq.drop"):
            self._tracer.emit(
                self._sim.now,
                "ifq.drop",
                node=self.node_id,
                pkt_kind=packet.kind.value,
                uid=packet.uid,
            )
        self._try_start()
        return accepted

    # ------------------------------------------------------------------
    # Transmit pipeline
    # ------------------------------------------------------------------

    def _try_start(self) -> None:
        if self._current is not None:
            return
        entry = self.queue.pop()
        if entry is None:
            return
        self._seq += 1
        self._current = _Attempt(entry.packet, entry.next_hop, self._seq)
        self._radio.mac_idle = False
        self._cw = self.timing.cw_min
        self._draw_backoff()
        self._begin_defer()

    def _draw_backoff(self) -> None:
        slots = int(self._rng.integers(0, self._cw + 1))
        self._backoff_remaining = slots * self.timing.slot

    def _medium_free(self) -> bool:
        return not self._radio.busy and self._sim.now >= self._nav_until

    def _begin_defer(self) -> None:
        if self._current is None or self._awaiting is not None:
            return
        if self._defer_timer.running:
            return
        if not self._medium_free():
            return  # resumed by on_medium_change when the medium clears
        self._defer_started = self._sim.now
        self._defer_ifs = (
            self.timing.eifs
            if (self.timing.use_eifs and self._eifs_pending)
            else self.timing.difs
        )
        self._defer_timer.start(self._defer_ifs + self._backoff_remaining)

    def _pause_defer(self) -> None:
        # _defer_started is non-None exactly while the defer timer runs, and
        # testing the attribute is far cheaper than Timer.running — this is
        # called for every overheard NAV update.
        if self._defer_started is None or not self._defer_timer.running:
            return
        elapsed = self._sim.now - self._defer_started
        consumed = max(0.0, elapsed - self._defer_ifs)
        self._backoff_remaining = max(0.0, self._backoff_remaining - consumed)
        self._defer_timer.cancel()
        self._defer_started = None

    def _defer_expired(self) -> None:
        self._defer_started = None
        if self._current is None:
            return
        if not self._medium_free():  # defensive: same-instant race
            self._begin_defer()
            return
        attempt = self._current
        packet_bytes = attempt.packet.size_bytes()
        timing = self.timing
        if attempt.next_hop == BROADCAST:
            frame = Frame(
                FrameKind.DATA,
                self.node_id,
                BROADCAST,
                duration=0.0,
                seq=attempt.seq,
                packet=attempt.packet,
            )
            self._transmit(frame, timing.data_airtime(packet_bytes))
        elif packet_bytes >= timing.rts_threshold:
            nav = (
                timing.cts_airtime
                + timing.data_airtime(packet_bytes)
                + timing.ack_airtime
                + 3 * timing.sifs
            )
            frame = Frame(
                FrameKind.RTS,
                self.node_id,
                attempt.next_hop,
                duration=nav,
                seq=attempt.seq,
            )
            self._transmit(frame, timing.rts_airtime)
        else:
            self._send_data_unicast()

    def _send_data_unicast(self) -> None:
        if self._current is None:
            return
        attempt = self._current
        timing = self.timing
        nav = timing.ack_airtime + timing.sifs
        frame = Frame(
            FrameKind.DATA,
            self.node_id,
            attempt.next_hop,
            duration=nav,
            seq=attempt.seq,
            packet=attempt.packet,
        )
        self._transmit(frame, timing.data_airtime(attempt.packet.size_bytes()))

    def _transmit(self, frame: Frame, airtime: float) -> None:
        if self._tracer.wants("mac.tx"):
            pkt_kind = frame.packet.kind.value if frame.packet is not None else None
            self._tracer.emit(
                self._sim.now,
                "mac.tx",
                node=self.node_id,
                frame_kind=frame.kind.value,
                dst=frame.dst,
                pkt_kind=pkt_kind,
            )
        self._radio.transmit(frame, airtime)

    # ------------------------------------------------------------------
    # Radio callbacks
    # ------------------------------------------------------------------

    def on_medium_change(self) -> None:
        """The radio's busy state (or the NAV) may have changed."""
        if self._current is None:
            # Nothing queued: the defer timer cannot be running (it is only
            # armed while an attempt exists), so there is nothing to start or
            # pause.  This is the common case — every transmission pings
            # every carrier-sense neighbour, and most of them are idle.
            return
        if self._medium_free():
            self._begin_defer()
        else:
            self._pause_defer()

    def on_tx_complete(self, frame: Frame) -> None:
        """Our own frame just left the antenna; sequence the exchange."""
        attempt = self._current
        if attempt is None:
            return  # a SIFS response (CTS/ACK); nothing to sequence
        timing = self.timing
        if frame.kind is FrameKind.RTS and frame.seq == attempt.seq:
            self._awaiting = "cts"
            self._response_timer.start(timing.cts_timeout)
        elif frame.kind is FrameKind.DATA and frame.seq == attempt.seq:
            if frame.is_broadcast:
                self._finish_current(success=True)
            else:
                self._awaiting = "ack"
                self._response_timer.start(timing.ack_timeout)

    def on_corrupt_frame(self) -> None:
        """The radio heard a frame it could not decode: defer EIFS next
        (802.11's protection for the unseen exchange's ACK)."""
        if self.timing.use_eifs:
            self._eifs_pending = True

    def on_frame(self, frame: Frame) -> None:
        """A frame decoded by our radio."""
        self._eifs_pending = False  # a correct reception resets EIFS
        if frame.dst == self.node_id:
            self._on_frame_for_us(frame)
            return
        if frame.dst == BROADCAST:
            if frame.kind is FrameKind.DATA and frame.packet is not None:
                self.deliver(frame.packet)
            return
        # Overheard unicast traffic: honour the NAV, then snoop.
        if frame.duration > 0:
            self._set_nav(self._sim.now + frame.duration)
        if frame.kind is FrameKind.DATA and frame.packet is not None:
            self.promiscuous(frame.packet)

    def _on_frame_for_us(self, frame: Frame) -> None:
        timing = self.timing
        if frame.kind is FrameKind.RTS:
            cts = Frame(
                FrameKind.CTS,
                self.node_id,
                frame.src,
                duration=max(0.0, frame.duration - timing.cts_airtime - timing.sifs),
            )
            self._sim.schedule(timing.sifs, self._send_response, cts, timing.cts_airtime)
        elif frame.kind is FrameKind.CTS:
            if (
                self._awaiting == "cts"
                and self._current is not None
                and frame.src == self._current.next_hop
            ):
                self._response_timer.cancel()
                self._awaiting = None
                self._sim.schedule(timing.sifs, self._data_after_cts)
        elif frame.kind is FrameKind.DATA:
            ack = Frame(FrameKind.ACK, self.node_id, frame.src, duration=0.0)
            self._sim.schedule(timing.sifs, self._send_response, ack, timing.ack_airtime)
            if self._last_seq.get(frame.src) != frame.seq:
                self._last_seq[frame.src] = frame.seq
                if frame.packet is not None:
                    self.deliver(frame.packet)
        elif frame.kind is FrameKind.ACK:
            if self._awaiting == "ack" and self._current is not None:
                self._response_timer.cancel()
                self._awaiting = None
                self._finish_current(success=True)

    # ------------------------------------------------------------------
    # Exchange continuation and failure handling
    # ------------------------------------------------------------------

    def _send_response(self, frame: Frame, airtime: float) -> None:
        if self._radio.transmitting:
            return  # cannot respond mid-transmission; peer will retry
        self._transmit(frame, airtime)

    def _data_after_cts(self) -> None:
        if self._current is None:
            return
        if self._radio.transmitting:  # pragma: no cover - defensive
            self._handle_retry()
            return
        self._send_data_unicast()

    def _response_timeout(self) -> None:
        self._awaiting = None
        self._handle_retry()

    def _handle_retry(self) -> None:
        attempt = self._current
        if attempt is None:
            return
        attempt.retries += 1
        if attempt.retries > self.timing.retry_limit:
            self._finish_current(success=False)
            return
        self._cw = min(2 * (self._cw + 1) - 1, self.timing.cw_max)
        self._draw_backoff()
        self._begin_defer()

    def _finish_current(self, success: bool) -> None:
        attempt = self._current
        assert attempt is not None
        self._current = None
        self._radio.mac_idle = True
        self._awaiting = None
        self._cw = self.timing.cw_min
        if attempt.next_hop != BROADCAST:
            if success:
                self.on_unicast_success(attempt.packet, attempt.next_hop)
            else:
                if self._tracer.wants("mac.fail"):
                    self._tracer.emit(
                        self._sim.now,
                        "mac.fail",
                        node=self.node_id,
                        next_hop=attempt.next_hop,
                        pkt_kind=attempt.packet.kind.value,
                        uid=attempt.packet.uid,
                    )
                self.on_unicast_failure(attempt.packet, attempt.next_hop)
        self._try_start()

    # ------------------------------------------------------------------
    # NAV
    # ------------------------------------------------------------------

    def _set_nav(self, until: float) -> None:
        if until <= self._nav_until:
            return
        self._nav_until = until
        self._pause_defer()
        self._sim.schedule_at(until, self.on_medium_change)

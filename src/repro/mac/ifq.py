"""The interface queue between the routing layer and the MAC.

Mirrors the CMU Monarch ns-2 configuration the paper used: a 50-packet
drop-tail queue in which routing-protocol packets have priority over data
packets — both for service order and for survival when the queue overflows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.net.packet import Packet


@dataclass
class QueuedPacket:
    packet: Packet
    next_hop: int


class InterfaceQueue:
    """Two-band priority queue (routing control above data)."""

    def __init__(self, capacity: int = 50):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._control: Deque[QueuedPacket] = deque()
        self._data: Deque[QueuedPacket] = deque()
        self.drops = 0

    def __len__(self) -> int:
        return len(self._control) + len(self._data)

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def push(self, packet: Packet, next_hop: int) -> bool:
        """Enqueue; returns False if the packet had to be dropped."""
        entry = QueuedPacket(packet, next_hop)
        if packet.kind.is_routing_control:
            if self.full:
                # Routing packets evict the youngest data packet if possible.
                if self._data:
                    self._data.pop()
                    self.drops += 1
                else:
                    self.drops += 1
                    return False
            self._control.append(entry)
            return True
        if self.full:
            self.drops += 1
            return False
        self._data.append(entry)
        return True

    def pop(self) -> Optional[QueuedPacket]:
        if self._control:
            return self._control.popleft()
        if self._data:
            return self._data.popleft()
        return None

    def peek(self) -> Optional[QueuedPacket]:
        if self._control:
            return self._control[0]
        if self._data:
            return self._data[0]
        return None

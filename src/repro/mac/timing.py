"""MAC/PHY timing and size constants.

Defaults follow IEEE 802.11-1997 DSSS PHY at WaveLAN's 2 Mb/s (the radio
the paper models): 20 us slots, 10 us SIFS, 50 us DIFS, 192 us PLCP
preamble+header, and the standard control-frame sizes.  Other radio
technologies derive their timing through :meth:`MacTiming.from_profile`,
which reads bitrate/slot/SIFS/PLCP from a :class:`~repro.phy.profiles.
RadioProfile` — every airtime, DIFS/EIFS and timeout below then scales with
the profile instead of assuming 2 Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.profiles import RadioProfile


@dataclass(frozen=True)
class MacTiming:
    """Every MAC/PHY timing knob in one immutable bundle."""

    bitrate: float = 2e6  # payload bit rate, b/s
    slot: float = 20e-6
    sifs: float = 10e-6
    plcp: float = 192e-6  # PLCP preamble + header, sent at the base rate
    cw_min: int = 31
    cw_max: int = 1023
    retry_limit: int = 7
    rts_bytes: int = 20
    cts_bytes: int = 14
    ack_bytes: int = 14
    mac_header_bytes: int = 28  # 24-byte header + 4-byte FCS
    rts_threshold: int = 0  # ns-2 default: RTS/CTS for every unicast
    use_eifs: bool = False  # extended IFS after corrupted receptions

    def __post_init__(self) -> None:
        if self.bitrate <= 0:
            raise ConfigurationError("bitrate must be positive")
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ConfigurationError("need 1 <= cw_min <= cw_max")
        if self.retry_limit < 1:
            raise ConfigurationError("retry_limit must be >= 1")

    @classmethod
    def from_profile(cls, profile: "RadioProfile", **overrides) -> "MacTiming":
        """Timing for a radio profile (bitrate, slot, SIFS, PLCP).

        Keyword overrides pass through to the constructor, so scenario
        knobs like ``use_eifs`` compose with any profile.  For the default
        ``wavelan`` profile the result equals ``MacTiming(**overrides)``
        field for field — the back-compat contract.
        """
        return cls(
            bitrate=profile.bitrate,
            slot=profile.slot,
            sifs=profile.sifs,
            plcp=profile.plcp,
            **overrides,
        )

    @property
    def difs(self) -> float:
        return self.sifs + 2 * self.slot

    @property
    def eifs(self) -> float:
        """Extended IFS: deference after a frame that failed its FCS —
        long enough for the unseen exchange's ACK (802.11 9.2.3.4)."""
        return self.sifs + self.ack_airtime + self.difs

    def airtime(self, size_bytes: int) -> float:
        """Time on the wire for a frame of ``size_bytes`` MAC-level bytes."""
        return self.plcp + (size_bytes * 8) / self.bitrate

    @property
    def rts_airtime(self) -> float:
        return self.airtime(self.rts_bytes)

    @property
    def cts_airtime(self) -> float:
        return self.airtime(self.cts_bytes)

    @property
    def ack_airtime(self) -> float:
        return self.airtime(self.ack_bytes)

    def data_airtime(self, packet_bytes: int) -> float:
        return self.airtime(self.mac_header_bytes + packet_bytes)

    @property
    def cts_timeout(self) -> float:
        """How long an RTS sender waits before declaring the CTS lost."""
        return self.sifs + self.cts_airtime + 2 * self.slot

    @property
    def ack_timeout(self) -> float:
        """How long a DATA sender waits before declaring the ACK lost."""
        return self.sifs + self.ack_airtime + 2 * self.slot

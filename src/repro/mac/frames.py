"""MAC frames.

A frame either carries a network-layer :class:`~repro.net.packet.Packet`
(kind ``DATA``) or is one of the three control frames.  ``duration`` is the
802.11 duration/NAV field: how much longer the medium will be reserved
*after* this frame ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.net.addresses import BROADCAST

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


class FrameKind(str, Enum):
    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"


@dataclass
class Frame:
    kind: FrameKind
    src: int
    dst: int
    duration: float = 0.0  # NAV seconds remaining after frame end
    seq: int = 0  # sender's MAC sequence number (for receiver dedup)
    packet: Optional["Packet"] = None

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = f" pkt={self.packet.kind.value}:{self.packet.uid}" if self.packet else ""
        return f"<Frame {self.kind.value} {self.src}->{self.dst}{payload}>"

"""Medium access control: a CSMA/CA MAC in the style of IEEE 802.11 DCF.

The properties the paper's study depends on are all here:

* physical + virtual (NAV) carrier sense with DIFS deferral and
  binary-exponential backoff,
* RTS/CTS/DATA/ACK exchange for unicast with a retry limit, whose exhaustion
  produces the **link-layer failure feedback** DSR uses to detect broken
  links,
* plain CSMA broadcast (no ACK) for floods and wide error notification,
* a 50-packet interface queue that gives routing packets priority (as in
  the CMU Monarch ns-2 model), and
* per-frame accounting of RTS/CTS/ACK control overhead for the paper's
  "normalized overhead" metric.
"""

from repro.mac.timing import MacTiming
from repro.mac.frames import Frame, FrameKind
from repro.mac.ifq import InterfaceQueue
from repro.mac.dcf import DcfMac

__all__ = ["MacTiming", "Frame", "FrameKind", "InterfaceQueue", "DcfMac"]

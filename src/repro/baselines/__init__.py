"""Baseline / comparison protocols.

The paper (section 6) conjectures its caching techniques transfer to other
on-demand protocols such as AODV, which caches routes indirectly through
intermediate-node replies.  :mod:`repro.baselines.aodv` provides a working
AODV implementation over the same stack so that conjecture can be
exercised (see ``benchmarks/bench_ext_aodv.py``).
"""

from repro.baselines.aodv.agent import AodvAgent
from repro.baselines.aodv.table import RouteEntry, RoutingTable
from repro.baselines.flooding import FloodingAgent

__all__ = ["AodvAgent", "RoutingTable", "RouteEntry", "FloodingAgent"]

"""Ad hoc On-demand Distance Vector routing (Perkins & Royer).

A deliberately faithful-but-compact AODV: hop-by-hop forwarding with
destination sequence numbers, flooded route requests with reverse-route
setup, replies from the destination or from intermediate nodes with fresh
routes, active-route lifetimes, and route errors on link-layer failure.
Hello messages are omitted — link failure detection relies on MAC feedback,
matching the DSR configuration used throughout the reproduction.
"""

from repro.baselines.aodv.agent import AodvAgent
from repro.baselines.aodv.messages import AodvRequest, AodvReply, AodvError
from repro.baselines.aodv.table import RouteEntry, RoutingTable

__all__ = [
    "AodvAgent",
    "RoutingTable",
    "RouteEntry",
    "AodvRequest",
    "AodvReply",
    "AodvError",
]

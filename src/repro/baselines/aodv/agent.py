"""The AODV routing agent.

Implements the on-demand core of RFC 3561 over the same node/MAC/radio
stack as DSR: flooded RREQs with reverse-path setup, sequence-numbered
replies from the destination or fresh intermediate routes, hop-by-hop data
forwarding with active-route lifetimes, and RERR dissemination driven by
link-layer feedback.  Omitted (deliberately, to match the paper's DSR
environment): hello beacons, local repair, and gratuitous RREPs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.aodv.messages import AodvError, AodvReply, AodvRequest
from repro.baselines.aodv.table import RoutingTable
from repro.core.request_table import SeenTable
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind
from repro.net.sendbuffer import SendBuffer
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import Tracer


class _Discovery:
    __slots__ = ("attempts", "timer")

    def __init__(self, timer: Timer):
        self.attempts = 0
        self.timer = timer


class AodvAgent:
    """Ad hoc On-demand Distance Vector routing for a single node.

    Optional RFC 3561 features:

    * **Expanding ring search** (``expanding_ring=True``, the RFC default):
      discovery begins with a small-TTL flood and widens
      (TTL 1 -> 3 -> 5 -> 7 -> network-wide) so nearby destinations don't
      cost network floods.
    * **Hello messages** (``hello_interval`` seconds, None = off): active
      nodes beacon periodically; missing ``ALLOWED_HELLO_LOSS`` consecutive
      hellos from a next hop invalidates the routes through it — failure
      detection without data traffic.
    """

    ACTIVE_ROUTE_TIMEOUT = 10.0
    DISCOVERY_BACKOFF_BASE = 0.5
    DISCOVERY_BACKOFF_MAX = 10.0
    RREQ_TTL = 64
    RING_TTLS = (1, 3, 5, 7)  # then network-wide
    ALLOWED_HELLO_LOSS = 2

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        validity_oracle: Optional[Callable[[Sequence[int]], bool]] = None,
        expanding_ring: bool = True,
        hello_interval: Optional[float] = None,
    ):
        self.node_id = node_id
        self._sim = sim
        # Test-convenience fallback only: the scenario builder always injects
        # a RandomStreams stream derived from the scenario seed.
        self._rng = rng or np.random.default_rng(node_id)  # repro-lint: disable=DET002
        self._tracer = tracer or Tracer()
        self._oracle = validity_oracle  # unused; kept for builder symmetry
        self.expanding_ring = expanding_ring
        self.hello_interval = hello_interval

        self.table = RoutingTable(active_route_timeout=self.ACTIVE_ROUTE_TIMEOUT)
        self.send_buffer = SendBuffer()
        self._seen_requests = SeenTable(capacity=1024, lifetime=30.0)
        self._discoveries: Dict[int, _Discovery] = {}
        self._seq = 0
        self._request_counter = 0
        self.node = None
        self._buffer_sweep = PeriodicTimer(sim, 1.0, self._sweep_send_buffer)
        self._last_hello: Dict[int, float] = {}  # neighbour -> last hello time
        self._hello_timer: Optional[PeriodicTimer] = None
        if hello_interval is not None:
            if hello_interval <= 0:
                raise ValueError("hello_interval must be positive")
            self._hello_timer = PeriodicTimer(sim, hello_interval, self._hello_tick)

    # ------------------------------------------------------------------

    def attach(self, node) -> None:
        self.node = node
        self._buffer_sweep.start()
        if self._hello_timer is not None:
            # Stagger first hellos so the whole network doesn't beacon at once.
            self._hello_timer.start(
                initial_delay=float(self._rng.uniform(0.0, self.hello_interval))
            )

    def _now(self) -> float:
        return self._sim.now

    def _emit(self, kind: str, **fields) -> None:
        self._tracer.emit(self._sim.now, kind, node=self.node_id, **fields)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Application-facing
    # ------------------------------------------------------------------

    def originate(self, packet: Packet) -> None:
        if packet.dst == self.node_id:
            self.node.deliver_to_app(packet)
            return
        entry = self.table.lookup(packet.dst, self._now())
        if entry is not None:
            self._forward_data(packet, entry.next_hop)
        else:
            evicted = self.send_buffer.add(packet, self._now())
            if evicted is not None:
                self._emit("aodv.drop", reason="send-buffer-overflow", uid=evicted.uid)
            self._start_discovery(packet.dst)

    def _forward_data(self, packet: Packet, next_hop: int) -> None:
        self.table.refresh(packet.dst, self._now())
        self.table.refresh(next_hop, self._now())
        self.table.refresh(packet.src, self._now())
        self.node.mac.enqueue(packet.clone(), next_hop)

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------

    def _start_discovery(self, target: int) -> None:
        state = self._discoveries.get(target)
        if state is not None and state.timer.running:
            return
        if state is None:
            state = _Discovery(Timer(self._sim, self._discovery_timeout))
            self._discoveries[target] = state
        state.attempts = 0
        self._send_request(target, attempt=0)
        state.timer.start(self.DISCOVERY_BACKOFF_BASE, target)

    def _discovery_timeout(self, target: int) -> None:
        state = self._discoveries.get(target)
        if state is None:
            return
        if (
            self.table.lookup(target, self._now()) is not None
            or not self.send_buffer.has_packets_for(target)
        ):
            self._discoveries.pop(target, None)
            self._drain_send_buffer(target)
            return
        state.attempts += 1
        self._send_request(target, attempt=state.attempts)
        backoff = min(
            self.DISCOVERY_BACKOFF_BASE * (2**state.attempts),
            self.DISCOVERY_BACKOFF_MAX,
        )
        state.timer.start(backoff, target)

    def _request_ttl(self, attempt: int) -> int:
        """Expanding ring search (RFC 3561 section 6.4)."""
        if not self.expanding_ring:
            return self.RREQ_TTL
        if attempt < len(self.RING_TTLS):
            return self.RING_TTLS[attempt]
        return self.RREQ_TTL

    def _send_request(self, target: int, attempt: int = 0) -> None:
        self._request_counter += 1
        request = AodvRequest(
            origin=self.node_id,
            origin_seq=self._next_seq(),
            target=target,
            target_seq=self.table.last_known_seq(target),
            request_id=self._request_counter,
            hop_count=0,
        )
        request.last_hop = self.node_id  # dynamic attribute: per-hop sender
        ttl = self._request_ttl(attempt)
        packet = Packet(
            kind=PacketKind.AODV_RREQ,
            src=self.node_id,
            dst=BROADCAST,
            uid=self.node.next_uid(),
            born=self._now(),
            ttl=ttl,
            info=request,
        )
        self._emit("aodv.rreq_sent", target=target, ttl=ttl)
        self._seen_requests.insert((self.node_id, self._request_counter), self._now())
        self.node.mac.enqueue(packet, BROADCAST)

    # ------------------------------------------------------------------
    # Packet reception
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        if packet.kind is PacketKind.DATA:
            self._handle_data(packet)
        elif packet.kind is PacketKind.AODV_RREQ:
            self._handle_request(packet)
        elif packet.kind is PacketKind.AODV_RREP:
            if packet.is_broadcast:
                self._handle_hello(packet)
            else:
                self._handle_reply(packet)
        elif packet.kind is PacketKind.AODV_RERR:
            self._handle_error(packet)

    def _handle_data(self, packet: Packet) -> None:
        if packet.dst == self.node_id:
            self.node.deliver_to_app(packet)
            return
        entry = self.table.lookup(packet.dst, self._now())
        if entry is None:
            self._emit("aodv.drop", reason="no-route-forwarding", uid=packet.uid)
            self._broadcast_error([(packet.dst, self.table.last_known_seq(packet.dst))])
            return
        self._forward_data(packet, entry.next_hop)

    def _handle_request(self, packet: Packet) -> None:
        request: AodvRequest = packet.info
        me = self.node_id
        if request.origin == me:
            return
        last_hop = getattr(request, "last_hop", request.origin)
        # Reverse route toward the originator.
        self.table.update(
            request.origin,
            next_hop=last_hop,
            hop_count=request.hop_count + 1,
            seq=request.origin_seq,
            now=self._now(),
        )
        if request.target != me and self._seen_requests.seen(
            (request.origin, request.request_id), self._now()
        ):
            return
        self._seen_requests.insert((request.origin, request.request_id), self._now())

        if request.target == me:
            self._seq = max(self._seq, request.target_seq)
            reply = AodvReply(
                origin=request.origin,
                target=me,
                target_seq=self._next_seq(),
                hop_count=0,
            )
            self._send_reply(reply)
            return

        entry = self.table.lookup(request.target, self._now())
        if entry is not None and entry.seq >= request.target_seq and entry.seq > 0:
            # Intermediate reply from a sufficiently fresh route — AODV's
            # (indirect) form of replying from a cache.
            reply = AodvReply(
                origin=request.origin,
                target=request.target,
                target_seq=entry.seq,
                hop_count=entry.hop_count,
            )
            self.table.add_precursor(request.target, last_hop)
            self._emit("aodv.cache_reply", target=request.target)
            self._send_reply(reply)
            return

        if packet.ttl > 1:
            forwarded_info = replace(request, hop_count=request.hop_count + 1)
            forwarded_info.last_hop = me
            forwarded = packet.clone(ttl=packet.ttl - 1)
            forwarded.info = forwarded_info
            jitter = float(self._rng.uniform(0.0, 0.01))
            self._sim.schedule(jitter, self.node.mac.enqueue, forwarded, BROADCAST)

    def _send_reply(self, reply: AodvReply) -> None:
        entry = self.table.lookup(reply.origin, self._now())
        if entry is None:
            return
        reply.last_hop = self.node_id
        packet = Packet(
            kind=PacketKind.AODV_RREP,
            src=self.node_id,
            dst=reply.origin,
            uid=self.node.next_uid(),
            born=self._now(),
            info=reply,
        )
        self._emit("aodv.rrep_sent", origin=reply.origin, target=reply.target)
        self.node.mac.enqueue(packet, entry.next_hop)

    def _handle_reply(self, packet: Packet) -> None:
        reply: AodvReply = packet.info
        me = self.node_id
        last_hop = getattr(reply, "last_hop", packet.src)
        # Forward route toward the reply's target.
        self.table.update(
            reply.target,
            next_hop=last_hop,
            hop_count=reply.hop_count + 1,
            seq=reply.target_seq,
            now=self._now(),
            lifetime=reply.lifetime,
        )
        if reply.origin == me:
            self._finish_discovery(reply.target)
            self._drain_send_buffer(reply.target)
            return
        entry = self.table.lookup(reply.origin, self._now())
        if entry is None:
            self._emit("aodv.drop", reason="no-reverse-route", uid=packet.uid)
            return
        self.table.add_precursor(reply.target, entry.next_hop)
        forwarded_info = replace(reply, hop_count=reply.hop_count + 1)
        forwarded_info.last_hop = me
        forwarded = packet.clone()
        forwarded.info = forwarded_info
        self.node.mac.enqueue(forwarded, entry.next_hop)

    def _finish_discovery(self, target: int) -> None:
        state = self._discoveries.pop(target, None)
        if state is not None:
            state.timer.cancel()

    def _drain_send_buffer(self, target: int) -> None:
        for waiting in self.send_buffer.take_for(target):
            entry = self.table.lookup(target, self._now())
            if entry is None:
                self.send_buffer.add(waiting, self._now())
                self._start_discovery(target)
                return
            self._forward_data(waiting, entry.next_hop)

    # ------------------------------------------------------------------
    # Route maintenance
    # ------------------------------------------------------------------

    def handle_unicast_success(self, packet: Packet, next_hop: int) -> None:
        """Active-route lifetimes were already refreshed at enqueue time."""

    def handle_unicast_failure(self, packet: Packet, next_hop: int) -> None:
        self._emit("aodv.link_break", next_hop=next_hop, pkt_kind=packet.kind.value)
        unreachable: List[Tuple[int, int]] = []
        for entry in self.table.routes_via(next_hop):
            broken = self.table.invalidate(entry.destination)
            if broken is not None:
                unreachable.append((broken.destination, broken.seq))
        if unreachable:
            self._broadcast_error(unreachable)
        if packet.kind is not PacketKind.DATA:
            return
        if packet.src == self.node_id:
            # Re-queue and rediscover, like a DSR source would.
            self.send_buffer.add(packet, self._now())
            self._start_discovery(packet.dst)
        else:
            self._emit("aodv.drop", reason="forwarding-failure", uid=packet.uid)

    def _broadcast_error(self, unreachable: List[Tuple[int, int]]) -> None:
        error = AodvError(unreachable=list(unreachable))
        error.reporter = self.node_id
        packet = Packet(
            kind=PacketKind.AODV_RERR,
            src=self.node_id,
            dst=BROADCAST,
            uid=self.node.next_uid(),
            born=self._now(),
            ttl=1,
            info=error,
        )
        self._emit("aodv.rerr_sent", count=len(unreachable))
        self.node.mac.enqueue(packet, BROADCAST)

    def _handle_error(self, packet: Packet) -> None:
        error: AodvError = packet.info
        reporter = getattr(error, "reporter", packet.src)
        cascaded: List[Tuple[int, int]] = []
        for dst, seq in error.unreachable:
            entry = self.table.entry(dst)
            if entry is not None and entry.valid and entry.next_hop == reporter:
                broken = self.table.invalidate(dst)
                if broken is not None:
                    broken.seq = max(broken.seq, seq)
                    cascaded.append((dst, broken.seq))
        if cascaded:
            self._broadcast_error(cascaded)

    # ------------------------------------------------------------------
    # Hello messages (RFC 3561 section 6.9)
    # ------------------------------------------------------------------

    def _hello_tick(self) -> None:
        self._check_hello_losses()
        reply = AodvReply(
            origin=self.node_id,
            target=self.node_id,
            target_seq=self._seq,
            hop_count=0,
            lifetime=self.ALLOWED_HELLO_LOSS * float(self.hello_interval),
        )
        reply.last_hop = self.node_id
        hello = Packet(
            kind=PacketKind.AODV_RREP,
            src=self.node_id,
            dst=BROADCAST,
            uid=self.node.next_uid(),
            born=self._now(),
            ttl=1,
            info=reply,
        )
        self.node.mac.enqueue(hello, BROADCAST)

    def _handle_hello(self, packet: Packet) -> None:
        reply: AodvReply = packet.info
        neighbor = reply.target
        self._last_hello[neighbor] = self._now()
        self.table.update(
            neighbor,
            next_hop=neighbor,
            hop_count=1,
            seq=reply.target_seq,
            now=self._now(),
            lifetime=reply.lifetime,
        )

    def _check_hello_losses(self) -> None:
        if self.hello_interval is None:
            return
        deadline = self._now() - self.ALLOWED_HELLO_LOSS * self.hello_interval
        for neighbor, last in list(self._last_hello.items()):
            if last >= deadline:
                continue
            del self._last_hello[neighbor]
            if self.table.routes_via(neighbor):
                self._emit("aodv.hello_loss", neighbor=neighbor)
                unreachable: List[Tuple[int, int]] = []
                for entry in self.table.routes_via(neighbor):
                    broken = self.table.invalidate(entry.destination)
                    # Announce only routes *through* the silent neighbour;
                    # its own disappearance needs no network-wide notice.
                    if broken is not None and broken.destination != neighbor:
                        unreachable.append((broken.destination, broken.seq))
                if unreachable:
                    self._broadcast_error(unreachable)

    # ------------------------------------------------------------------
    # Promiscuous hook (unused by AODV) and sweeps
    # ------------------------------------------------------------------

    def handle_promiscuous(self, packet: Packet) -> None:
        """AODV does not snoop; present for stack-wiring compatibility."""

    def _sweep_send_buffer(self) -> None:
        for expired in self.send_buffer.expire(self._now()):
            self._emit("aodv.drop", reason="send-buffer-timeout", uid=expired.uid)
        for dst in self.send_buffer.destinations():
            state = self._discoveries.get(dst)
            if state is None or not state.timer.running:
                self._start_discovery(dst)

"""The AODV routing table: per-destination next hops with sequence numbers
and active-route lifetimes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass
class RouteEntry:
    destination: int
    next_hop: int
    hop_count: int
    seq: int
    expires: float
    valid: bool = True
    precursors: Set[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.precursors is None:
            self.precursors = set()


class RoutingTable:
    """Sequence-numbered distance-vector table (RFC 3561 semantics)."""

    def __init__(self, active_route_timeout: float = 10.0):
        self.active_route_timeout = active_route_timeout
        self._entries: Dict[int, RouteEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, dst: int) -> Optional[RouteEntry]:
        return self._entries.get(dst)

    def lookup(self, dst: int, now: float) -> Optional[RouteEntry]:
        """A valid, unexpired entry for ``dst`` (expired entries are
        invalidated lazily, preserving their sequence number)."""
        entry = self._entries.get(dst)
        if entry is None or not entry.valid:
            return None
        if entry.expires <= now:
            entry.valid = False
            return None
        return entry

    def update(
        self,
        dst: int,
        next_hop: int,
        hop_count: int,
        seq: int,
        now: float,
        lifetime: Optional[float] = None,
    ) -> bool:
        """Install/refresh a route using RFC 3561 acceptance rules: accept a
        strictly newer sequence number, or an equal one with fewer hops, or
        anything when the current entry is missing/invalid."""
        lifetime = self.active_route_timeout if lifetime is None else lifetime
        current = self._entries.get(dst)
        accept = (
            current is None
            or not current.valid
            or seq > current.seq
            or (seq == current.seq and hop_count < current.hop_count)
        )
        if not accept:
            # Still refresh the lifetime if this confirms the same route.
            if current.next_hop == next_hop and seq == current.seq:
                current.expires = max(current.expires, now + lifetime)
            return False
        precursors = current.precursors if current is not None else set()
        self._entries[dst] = RouteEntry(
            destination=dst,
            next_hop=next_hop,
            hop_count=hop_count,
            seq=seq,
            expires=now + lifetime,
            valid=True,
            precursors=precursors,
        )
        return True

    def refresh(self, dst: int, now: float) -> None:
        """Extend the lifetime of an actively used route."""
        entry = self._entries.get(dst)
        if entry is not None and entry.valid:
            entry.expires = max(entry.expires, now + self.active_route_timeout)

    def add_precursor(self, dst: int, neighbor: int) -> None:
        entry = self._entries.get(dst)
        if entry is not None:
            entry.precursors.add(neighbor)

    def invalidate(self, dst: int) -> Optional[RouteEntry]:
        """Mark a route broken; bumps its sequence number per RFC 3561."""
        entry = self._entries.get(dst)
        if entry is None or not entry.valid:
            return None
        entry.valid = False
        entry.seq += 1
        return entry

    def routes_via(self, next_hop: int) -> List[RouteEntry]:
        """All valid routes whose next hop is ``next_hop``."""
        return [
            entry
            for entry in self._entries.values()
            if entry.valid and entry.next_hop == next_hop
        ]

    def last_known_seq(self, dst: int) -> int:
        entry = self._entries.get(dst)
        return entry.seq if entry is not None else 0

"""AODV control message bodies (RFC 3561 shapes, simulator encoding)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class AodvRequest:
    """RREQ: flooded route discovery."""

    origin: int
    origin_seq: int
    target: int
    target_seq: int  # last known destination sequence number (0 = unknown)
    request_id: int
    hop_count: int = 0

    def header_bytes(self) -> int:
        return 24


@dataclass
class AodvReply:
    """RREP: unicast back along the reverse path."""

    origin: int  # who asked
    target: int  # route destination this reply describes
    target_seq: int
    hop_count: int  # hops from the replier to the target
    lifetime: float = 10.0

    def header_bytes(self) -> int:
        return 20


@dataclass
class AodvError:
    """RERR: destinations unreachable through the sender."""

    unreachable: List[Tuple[int, int]] = field(default_factory=list)  # (dst, seq)

    def header_bytes(self) -> int:
        return 4 + 8 * len(self.unreachable)

"""Controlled flooding: the no-routing baseline.

Every data packet is broadcast network-wide with duplicate suppression and
a TTL.  No routes, no caches, no maintenance — delivery is maximised (any
path that exists is used) at maximal transmission cost.  Evaluation papers
use flooding as the *upper bound on delivery / lower bound on efficiency*
corner; it also makes a clean null model for the overhead metric.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.request_table import SeenTable
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class FloodingAgent:
    """Broadcast-everything routing for one node."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        validity_oracle=None,  # accepted for builder symmetry; unused
        default_ttl: int = 16,
    ):
        self.node_id = node_id
        self._sim = sim
        # Test-convenience fallback only: the scenario builder always injects
        # a RandomStreams stream derived from the scenario seed.
        self._rng = rng or np.random.default_rng(node_id)  # repro-lint: disable=DET002
        self._tracer = tracer or Tracer()
        self.default_ttl = default_ttl
        self._seen = SeenTable(capacity=4096, lifetime=60.0)
        self.node = None

    def attach(self, node) -> None:
        self.node = node

    # ------------------------------------------------------------------

    def originate(self, packet: Packet) -> None:
        if packet.dst == self.node_id:
            self.node.deliver_to_app(packet)
            return
        flooded = packet.clone(ttl=self.default_ttl)
        self._seen.insert(packet.uid, self._sim.now)
        self.node.mac.enqueue(flooded, BROADCAST)

    def handle_packet(self, packet: Packet) -> None:
        if self._seen.seen(packet.uid, self._sim.now):
            return
        self._seen.insert(packet.uid, self._sim.now)
        if packet.dst == self.node_id:
            self.node.deliver_to_app(packet)
            return
        if packet.ttl > 1:
            forwarded = packet.clone(ttl=packet.ttl - 1)
            jitter = float(self._rng.uniform(0.0, 0.01))
            self._sim.schedule(jitter, self.node.mac.enqueue, forwarded, BROADCAST)

    # ------------------------------------------------------------------
    # Stack-wiring hooks (nothing to do: no unicast, no snooping).
    # ------------------------------------------------------------------

    def handle_promiscuous(self, packet: Packet) -> None:
        pass

    def handle_unicast_success(self, packet: Packet, next_hop: int) -> None:
        pass

    def handle_unicast_failure(self, packet: Packet, next_hop: int) -> None:
        pass

"""Reproduction of Marina & Das, "Performance of Route Caching Strategies in
Dynamic Source Routing" (ICDCS 2001).

The package is a self-contained discrete-event simulator for mobile ad hoc
networks (MANETs) together with a full implementation of the Dynamic Source
Routing (DSR) protocol and the paper's three cache-correctness techniques:
wider error notification, timer-based route expiry with adaptive timeout
selection, and negative caches.

High-level entry points:

* :class:`repro.scenarios.ScenarioConfig` / :func:`repro.scenarios.run_scenario`
  — configure and run a complete simulation, returning a
  :class:`repro.metrics.SimulationResult`.
* :class:`repro.core.DsrConfig` — toggles for every protocol feature and
  caching strategy studied in the paper.
* :mod:`repro.analysis` — helpers that aggregate results over seeds and render
  the paper's tables and figure series.
"""

from repro.version import __version__

from repro.core.config import DsrConfig
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.builder import build_simulation, run_scenario
from repro.metrics.collector import MetricsCollector, SimulationResult


def reproduce(*args, **kwargs):
    """Run the paper's full evaluation; see :func:`repro.paper.reproduce`."""
    from repro.paper import reproduce as _reproduce

    return _reproduce(*args, **kwargs)


__all__ = [
    "__version__",
    "DsrConfig",
    "ScenarioConfig",
    "build_simulation",
    "run_scenario",
    "MetricsCollector",
    "SimulationResult",
    "reproduce",
]

"""Command-line entry point: ``repro-run``.

Runs one scenario and prints the paper's metrics, e.g.::

    repro-run --preset scaled --variant AllTechniques --pause-time 0 --seed 3
    repro-run --preset paper --variant DSR --packet-rate 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import PAPER_VARIANTS, DsrConfig, ExpiryMode
from repro.phy.profiles import profile_names
from repro.scenarios import presets
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Run one DSR route-caching simulation (Marina & Das, ICDCS 2001 "
            "reproduction) and print the paper's metrics."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--preset",
        choices=("tiny", "scaled", "paper"),
        default="scaled",
        help="scenario scale (default: scaled; 'paper' is the full 100-node setup)",
    )
    parser.add_argument(
        "--variant",
        choices=sorted(PAPER_VARIANTS),
        default="DSR",
        help="protocol variant from the paper's evaluation (default: DSR)",
    )
    parser.add_argument("--pause-time", type=float, default=0.0, help="seconds (0 = constant mobility)")
    parser.add_argument("--packet-rate", type=float, default=3.0, help="packets/s per CBR session")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help="run several seeds and report means with 95%% CIs (overrides --seed)",
    )
    parser.add_argument(
        "--static-timeout",
        type=float,
        default=None,
        help="use a static route expiry timeout of this many seconds",
    )
    parser.add_argument("--duration", type=float, default=None, help="override simulated seconds")
    parser.add_argument(
        "--protocol",
        choices=("dsr", "aodv"),
        default="dsr",
        help="routing protocol (aodv ignores --variant)",
    )
    parser.add_argument(
        "--mobility",
        choices=("waypoint", "gauss_markov", "rpgm", "random_walk"),
        default="waypoint",
        help="mobility model (default: the paper's random waypoint)",
    )
    parser.add_argument(
        "--grey-zone",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="lossy outer fraction of the radio range (0 = ideal disk)",
    )
    parser.add_argument(
        "--radio-profile",
        choices=profile_names(),
        default="wavelan",
        help=(
            "radio technology profile (geometry, bitrate, timing, energy, "
            "loss shape, capture; default: the paper's wavelan)"
        ),
    )
    parser.add_argument(
        "--link-loss",
        type=float,
        default=0.0,
        metavar="P",
        help=(
            "distance-independent frame-loss probability layered on the "
            "profile's own loss shape (0 = profile default)"
        ),
    )
    parser.add_argument(
        "--loss-sweep",
        metavar="L1,L2,...",
        default=None,
        help=(
            "instead of one run, sweep every cache-strategy variant across "
            "these link-loss levels on a frozen network (uses the sweep "
            "engine and its cache) and print a markdown report"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full result record as JSON to PATH",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for multi-seed runs (default: all cores; "
            "1 forces in-process execution for debugging)"
        ),
    )
    parser.add_argument(
        "--seed-batch",
        type=int,
        default=1,
        metavar="N",
        help=(
            "group up to N replications of the same scenario into one worker "
            "dispatch for multi-seed runs: process spawn and import cost are "
            "paid once per batch instead of once per seed (results are "
            "identical for any batch size; default: 1)"
        ),
    )
    parser.add_argument(
        "--neighbor-index",
        choices=("auto", "allpairs", "grid"),
        default="auto",
        help=(
            "spatial index behind the neighbour cache: 'auto' picks the "
            "uniform-grid cell list at large node counts, the all-pairs "
            "matrix below; metrics are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "content-addressed result cache directory: runs already in the "
            "cache are loaded instead of simulated"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (always simulate, never read or write the cache)",
    )
    parser.add_argument(
        "--cache-prune",
        metavar="SPEC",
        default=None,
        help=(
            "after the run, garbage-collect --cache-dir to the given bounds: "
            "a size ('500MB', '1GiB'), an age ('7d', '12h'), or both "
            "('1GiB,30d'); least-recently-used entries are evicted first"
        ),
    )
    obs = parser.add_argument_group(
        "observability",
        "trace/metrics/profiling outputs for a single run (not --seeds); "
        "simulation metrics are bit-identical with these on or off",
    )
    obs.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write every trace record to PATH (.jsonl suffix selects jsonl, "
        "else text; inspect with repro-trace)",
    )
    obs.add_argument(
        "--trace-format",
        choices=("text", "jsonl"),
        default=None,
        help="force the trace format instead of inferring it from the suffix",
    )
    obs.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a per-interval metrics timeseries to PATH "
        "(.csv suffix selects CSV, else JSONL)",
    )
    obs.add_argument(
        "--metrics-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="timeseries interval in simulated seconds (default: 5)",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall-clock to engine callbacks; table printed to stderr",
    )
    obs.add_argument(
        "--flight-recorder",
        metavar="PATH",
        default=None,
        help="keep a ring of recent trace records and dump it to PATH "
        "(always on exit, and on a crash with the context that led to it)",
    )
    obs.add_argument(
        "--flight-capacity",
        type=int,
        default=512,
        metavar="N",
        help="flight recorder ring size (default: 512)",
    )
    parser.add_argument(
        "--config",
        metavar="PATH",
        default=None,
        help="load the complete scenario from a JSON file (overrides every other scenario flag)",
    )
    parser.add_argument(
        "--save-config",
        metavar="PATH",
        default=None,
        help="write the effective scenario to a JSON file (reload with --config)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.loss_sweep is not None:
        return _run_loss_sweep(args)

    if args.config is not None:
        from repro.scenarios.io import load_scenario

        config = load_scenario(args.config)
        return _run_and_report(args, config)

    dsr: DsrConfig = PAPER_VARIANTS[args.variant]
    if args.static_timeout is not None:
        dsr = dsr.but(expiry_mode=ExpiryMode.STATIC, static_timeout=args.static_timeout)

    if args.preset == "tiny":
        config = presets.tiny_scenario(dsr=dsr, seed=args.seed, pause_time=args.pause_time)
        config = config.but(packet_rate=args.packet_rate)
    elif args.preset == "scaled":
        config = presets.scaled_scenario(
            pause_time=args.pause_time,
            packet_rate=args.packet_rate,
            dsr=dsr,
            seed=args.seed,
        )
    else:
        config = presets.paper_scenario(
            pause_time=args.pause_time,
            packet_rate=args.packet_rate,
            dsr=dsr,
            seed=args.seed,
        )
    if args.duration is not None:
        config = config.but(duration=args.duration)
    config = config.but(
        protocol=args.protocol,
        mobility_model=args.mobility,
        grey_zone_fraction=args.grey_zone,
        neighbor_index=args.neighbor_index,
        radio_profile=args.radio_profile,
        link_loss=args.link_loss,
    )
    return _run_and_report(args, config)


def _run_loss_sweep(args) -> int:
    """``--loss-sweep``: cache strategies x loss levels via repro.paper."""
    from repro.analysis.runner import SweepInterrupted
    from repro.paper import loss_sweep

    try:
        levels = [
            float(chunk) for chunk in args.loss_sweep.split(",") if chunk.strip()
        ]
    except ValueError:
        print(
            f"error: --loss-sweep expects comma-separated floats, "
            f"got {args.loss_sweep!r}",
            file=sys.stderr,
        )
        return 2
    if not levels:
        print("error: --loss-sweep needs at least one loss level", file=sys.stderr)
        return 2
    scale = {"tiny": "quick", "scaled": "scaled", "paper": "paper"}[args.preset]
    if args.seeds:
        seeds = [int(chunk) for chunk in args.seeds.split(",") if chunk.strip()]
    else:
        seeds = [args.seed]
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        report = loss_sweep(
            scale=scale,
            seeds=seeds,
            levels=levels,
            profile=args.radio_profile,
            processes=args.processes,
            cache_dir=cache_dir,
            progress=lambda message: print(message, file=sys.stderr),
        )
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    print(report.to_markdown())
    return 0


def _run_and_report(args, config) -> int:
    from repro.analysis.runner import SweepInterrupted
    from repro.scenarios.checks import check_scenario

    prune_bounds = None
    if args.cache_prune is not None:
        if args.no_cache or args.cache_dir is None:
            print(
                "error: --cache-prune needs an effective cache "
                "(give --cache-dir, drop --no-cache)",
                file=sys.stderr,
            )
            return 2
        from repro.analysis.cache import parse_prune_spec

        try:
            prune_bounds = parse_prune_spec(args.cache_prune)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    for warning in check_scenario(config):
        print(f"warning: {warning}", file=sys.stderr)

    if args.save_config is not None:
        from repro.scenarios.io import save_scenario

        path = save_scenario(config, args.save_config)
        print(f"scenario written         : {path}", file=sys.stderr)

    print(
        f"Running {config.protocol} | {config.num_nodes} nodes, "
        f"{config.field_width:g}x{config.field_height:g} m, "
        f"{config.duration:g} s, pause {config.pause_time:g} s, "
        f"{config.num_sessions} sessions @ {config.packet_rate:g} pkt/s, "
        f"seed {config.seed}",
        file=sys.stderr,
    )

    obs_requested = bool(
        args.trace or args.metrics or args.profile or args.flight_recorder
    )
    if args.seeds:
        if obs_requested:
            print(
                "error: --trace/--metrics/--profile/--flight-recorder observe "
                "one run and cannot be combined with --seeds",
                file=sys.stderr,
            )
            return 2
        engine = _build_engine(args)
        seeds = [int(chunk) for chunk in args.seeds.split(",") if chunk.strip()]
        try:
            code = _run_seed_average(args, config, seeds, engine)
        except SweepInterrupted as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            return 130
        _maybe_prune(args, prune_bounds)
        return code

    if obs_requested:
        result = _run_observed(args, config)
    else:
        engine = _build_engine(args)
        try:
            [result] = engine.run_results([config])
        except SweepInterrupted as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            return 130
        _report_engine(engine, file=sys.stderr)

    print(f"packet delivery fraction : {result.packet_delivery_fraction:.4f}")
    print(f"average delay (s)        : {result.average_delay:.4f}")
    print(f"normalized overhead      : {result.normalized_overhead:.2f}")
    print(f"throughput (kb/s)        : {result.throughput_kbps:.1f}")
    print(f"good replies (%)         : {result.pct_good_replies:.1f}")
    print(f"invalid cached routes (%): {result.pct_invalid_cache_hits:.1f}")
    print(f"data sent/received       : {result.data_sent}/{result.data_received}")
    print(f"link breaks              : {result.link_breaks}")
    print(f"route requests sent      : {result.rreq_sent}")
    if args.json is not None:
        from repro.analysis.export import result_to_json

        path = result_to_json(result, args.json)
        print(f"result written           : {path}", file=sys.stderr)
    _maybe_prune(args, prune_bounds)
    return 0


def _run_observed(args, config):
    """Run one scenario in-process with the requested observability wiring.

    The observers only subscribe/sample — metrics are bit-identical to the
    unobserved engine path for the same scenario.
    """
    from repro.obs import Observability
    from repro.scenarios.builder import build_simulation
    from repro.sim.tracefile import TraceFileWriter

    handle = build_simulation(config)
    obs = Observability(
        metrics_interval=args.metrics_interval if args.metrics else None,
        profile=args.profile,
        flight_capacity=args.flight_capacity if args.flight_recorder else None,
    ).attach(handle)

    writer = None
    if args.trace:
        fmt = args.trace_format or (
            "jsonl" if str(args.trace).endswith(".jsonl") else "text"
        )
        writer = TraceFileWriter(handle.tracer, args.trace, fmt=fmt)
    try:
        result = obs.run(handle, flight_dump_path=args.flight_recorder)
    except BaseException:
        if args.flight_recorder:
            print(f"flight recorder dump    : {args.flight_recorder}", file=sys.stderr)
        raise
    finally:
        if writer is not None:
            writer.close()

    if args.trace:
        print(
            f"trace written            : {args.trace} "
            f"({writer.records_written} records)",
            file=sys.stderr,
        )
    if args.metrics:
        interval = obs.interval_metrics
        if str(args.metrics).endswith(".csv"):
            interval.export_csv(args.metrics)
        else:
            interval.export_jsonl(args.metrics)
        print(
            f"metrics written          : {args.metrics} "
            f"({len(interval.rows)} intervals)",
            file=sys.stderr,
        )
    if args.flight_recorder:
        obs.flight.dump(args.flight_recorder)
        print(f"flight recorder          : {args.flight_recorder}", file=sys.stderr)
    if args.profile:
        print(obs.profile_report().format(top=12), file=sys.stderr)
    return result


def _build_engine(args):
    from repro.analysis.runner import SweepEngine

    cache_dir = None if getattr(args, "no_cache", False) else args.cache_dir
    return SweepEngine.create(
        processes=args.processes,
        cache_dir=cache_dir,
        seed_batch=getattr(args, "seed_batch", 1),
    )


def _maybe_prune(args, prune_bounds) -> None:
    """Post-run cache GC for ``--cache-prune`` (no-op when not requested)."""
    if prune_bounds is None:
        return
    from repro.analysis.cache import ResultCache

    max_bytes, max_age_s = prune_bounds
    report = ResultCache(args.cache_dir).prune(
        max_bytes=max_bytes, max_age_s=max_age_s
    )
    print(f"cache gc                 : {report.summary()}", file=sys.stderr)


def _report_engine(engine, file) -> None:
    if engine.cache is None:
        return
    stats = engine.cache.stats
    print(
        f"result cache             : {stats.hits} hit(s), {stats.misses} "
        f"miss(es), {stats.stores} stored",
        file=file,
    )


def _run_seed_average(args, config, seeds, engine) -> int:
    from repro.analysis.stats import aggregate

    results = engine.run_results([config.but(seed=seed) for seed in seeds])
    agg = aggregate(results)
    _report_engine(engine, file=sys.stderr)

    def line(label, metric, scale=1.0, unit=""):
        mean = agg.means[metric] * scale
        half = agg.half_widths[metric] * scale
        print(f"{label:<25}: {mean:.4f} +/- {half:.4f}{unit}")

    print(f"seeds                    : {seeds}")
    line("packet delivery fraction", "pdf")
    line("average delay (s)", "delay")
    line("normalized overhead", "overhead")
    line("throughput (kb/s)", "throughput_kbps")
    line("good replies (%)", "good_replies_pct")
    line("invalid cached routes (%)", "invalid_cache_pct")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. scheduling in
    the past, or running a simulator that was already stopped)."""


class ConfigurationError(ReproError):
    """A scenario or protocol configuration value is invalid."""


class RoutingError(ReproError):
    """A routing-layer invariant was violated (e.g. a malformed source
    route reached the forwarding path)."""

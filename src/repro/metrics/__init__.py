"""Measurement: the paper's routing and cache-correctness metrics.

Routing metrics (section 4.2): packet delivery fraction (or received
throughput), average end-to-end delay, and normalized overhead — *all*
overhead packets (routing **and** MAC control frames) per delivered data
packet, counted per hop-wise transmission.

Cache metrics: percentage of good replies (route replies received at
sources whose route is fully alive at receipt, judged against ground-truth
positions) and percentage of invalid cached routes (cache hits whose route
is already dead).
"""

from repro.metrics.collector import MetricsCollector, SimulationResult
from repro.metrics.groundtruth import make_validity_oracle
from repro.metrics.pernode import NodeStats, PerNodeCollector
from repro.metrics.cachestats import CacheSample, CacheSampler
from repro.metrics.replay import iter_trace, replay_metrics

__all__ = [
    "MetricsCollector",
    "SimulationResult",
    "make_validity_oracle",
    "PerNodeCollector",
    "NodeStats",
    "CacheSampler",
    "CacheSample",
    "replay_metrics",
    "iter_trace",
]

"""Cache-composition sampling over time.

The paper's cache metrics are *usage*-weighted (what happens on hits and
replies); this sampler measures the *stock*: every ``period`` seconds it
walks each node's route cache and scores every stored path against the
ground-truth oracle, yielding a time series of cache size and staleness —
the picture behind Fig. 1's "why a timeout helps".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass(frozen=True)
class CacheSample:
    """One snapshot of the whole network's caches."""

    time: float
    total_paths: int
    stale_paths: int
    per_node_paths: Dict[int, int]

    @property
    def stale_fraction(self) -> float:
        if self.total_paths == 0:
            return 0.0
        return self.stale_paths / self.total_paths


class CacheSampler:
    """Periodically snapshots every DSR agent's path cache."""

    def __init__(
        self,
        sim: Simulator,
        agents: Dict[int, object],
        oracle: Callable[[Sequence[int]], bool],
        period: float = 5.0,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self._agents = agents
        self._oracle = oracle
        self.samples: List[CacheSample] = []
        self._timer = PeriodicTimer(sim, period, lambda: self.sample(sim.now))
        self._timer.start(initial_delay=period)

    def stop(self) -> None:
        self._timer.stop()

    def sample(self, now: float) -> CacheSample:
        total = stale = 0
        per_node: Dict[int, int] = {}
        for node_id, agent in self._agents.items():
            cache = getattr(agent, "cache", None)
            paths = getattr(cache, "paths", None)
            if paths is None:  # link caches / AODV have no path listing
                continue
            stored = paths()
            per_node[node_id] = len(stored)
            total += len(stored)
            for cached in stored:
                if not self._oracle(list(cached.route)):
                    stale += 1
        sample = CacheSample(
            time=now, total_paths=total, stale_paths=stale, per_node_paths=per_node
        )
        self.samples.append(sample)
        return sample

    def stale_fraction_series(self) -> List[tuple]:
        return [(sample.time, sample.stale_fraction) for sample in self.samples]

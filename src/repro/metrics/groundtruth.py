"""Ground-truth route validity.

The paper's cache metrics need an oracle: *is this cached/replied route
actually usable right now?*  In simulation we can answer exactly — every
consecutive pair of hops must currently be within radio range.  The oracle
reads positions through the same :class:`~repro.phy.neighbors.NeighborCache`
the channel uses, so "valid" means "the next data packet along this route
could physically make it".

The oracle is observation only; it never feeds back into protocol state.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.phy.neighbors import NeighborCache
from repro.sim.engine import Simulator


def make_validity_oracle(
    sim: Simulator, neighbors: NeighborCache
) -> Callable[[Sequence[int]], bool]:
    """Build a ``route -> bool`` oracle bound to live simulation time."""

    def route_is_valid(route: Sequence[int]) -> bool:
        hops: List[int] = list(route)
        return neighbors.route_valid(hops, sim.now)

    return route_is_valid

"""Per-node metric breakdowns.

The aggregate collector answers the paper's questions; this one answers the
debugging ones: *which* nodes burn the airtime, drop the packets, or sit on
polluted caches.  Subscribe before the run; query afterwards.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.trace import TraceRecord, Tracer


@dataclass
class NodeStats:
    """Counters for one node."""

    data_originated: int = 0
    data_delivered: int = 0  # as the destination
    frames_sent: int = 0
    control_frames_sent: int = 0
    routing_packets_sent: int = 0
    data_packets_sent: int = 0  # per-hop data transmissions
    link_breaks: int = 0
    salvages: int = 0
    cache_hits: int = 0
    invalid_cache_hits: int = 0
    replies_sent: int = 0
    drops: Counter = field(default_factory=Counter)


class PerNodeCollector:
    """Aggregates trace events into per-node counters."""

    def __init__(self, tracer: Tracer):
        self._stats: Dict[int, NodeStats] = defaultdict(NodeStats)
        tracer.subscribe("app.send", self._on_app_send)
        tracer.subscribe("app.recv", self._on_app_recv)
        tracer.subscribe("mac.tx", self._on_mac_tx)
        tracer.subscribe("dsr.link_break", self._on_link_break)
        tracer.subscribe("dsr.salvage", self._on_salvage)
        tracer.subscribe("dsr.cache_use", self._on_cache_use)
        tracer.subscribe("dsr.reply_sent", self._on_reply_sent)
        tracer.subscribe("dsr.drop", self._on_drop)

    def node(self, node_id: int) -> NodeStats:
        return self._stats[node_id]

    def nodes(self) -> Dict[int, NodeStats]:
        return dict(self._stats)

    # -- subscribers -----------------------------------------------------

    def _on_app_send(self, record: TraceRecord) -> None:
        self._stats[record.fields["src"]].data_originated += 1

    def _on_app_recv(self, record: TraceRecord) -> None:
        self._stats[record.fields["dst"]].data_delivered += 1

    def _on_mac_tx(self, record: TraceRecord) -> None:
        stats = self._stats[record.fields["node"]]
        stats.frames_sent += 1
        kind = record.fields["frame_kind"]
        if kind in ("rts", "cts", "ack"):
            stats.control_frames_sent += 1
            return
        pkt_kind = record.fields.get("pkt_kind")
        if pkt_kind == "data":
            stats.data_packets_sent += 1
        elif pkt_kind is not None:
            stats.routing_packets_sent += 1

    def _on_link_break(self, record: TraceRecord) -> None:
        self._stats[record.fields["node"]].link_breaks += 1

    def _on_salvage(self, record: TraceRecord) -> None:
        self._stats[record.fields["node"]].salvages += 1

    def _on_cache_use(self, record: TraceRecord) -> None:
        stats = self._stats[record.fields["node"]]
        stats.cache_hits += 1
        if record.fields.get("valid") is False:
            stats.invalid_cache_hits += 1

    def _on_reply_sent(self, record: TraceRecord) -> None:
        self._stats[record.fields["node"]].replies_sent += 1

    def _on_drop(self, record: TraceRecord) -> None:
        self._stats[record.fields["node"]].drops[record.fields["reason"]] += 1

    # -- reporting ---------------------------------------------------------

    def hotspots(self, metric: str = "frames_sent", top: int = 5) -> List[tuple]:
        """The ``top`` nodes by a NodeStats attribute, descending."""
        ranked = sorted(
            self._stats.items(),
            key=lambda item: getattr(item[1], metric),
            reverse=True,
        )
        return [(node_id, getattr(stats, metric)) for node_id, stats in ranked[:top]]

    def format_report(self, top: int = 10) -> str:
        """A compact text table of the busiest nodes."""
        header = (
            f"{'node':>5} {'frames':>8} {'ctrl':>7} {'routing':>8} "
            f"{'data':>7} {'breaks':>7} {'drops':>6}"
        )
        lines = [header, "-" * len(header)]
        for node_id, _ in self.hotspots("frames_sent", top):
            stats = self._stats[node_id]
            lines.append(
                f"{node_id:>5} {stats.frames_sent:>8} {stats.control_frames_sent:>7} "
                f"{stats.routing_packets_sent:>8} {stats.data_packets_sent:>7} "
                f"{stats.link_breaks:>7} {sum(stats.drops.values()):>6}"
            )
        return "\n".join(lines)

"""Offline metric recomputation from trace files.

``TraceFileWriter`` (jsonl format) captures a run; ``replay_metrics`` reads
such a file back and recomputes the full :class:`SimulationResult` without
re-simulating — the workflow for archiving raw traces and deriving new
metrics later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from repro.metrics.collector import MetricsCollector, SimulationResult
from repro.sim.trace import Tracer

PathLike = Union[str, Path]


def iter_trace(path: PathLike) -> Iterator[dict]:
    """Yield the records of a JSONL trace file as dicts."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def replay_metrics(
    path: PathLike,
    duration: float,
    payload_bytes: int = 512,
    offered_load_kbps: float | None = None,
) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from a JSONL trace file.

    The file must contain (at least) the event kinds the collector
    subscribes to; extra kinds are ignored.  ``duration`` cannot be
    inferred from the trace (a silent tail is invisible), so it is
    explicit.
    """
    tracer = Tracer()
    collector = MetricsCollector(tracer)
    for record in iter_trace(path):
        time = record.pop("t")
        kind = record.pop("kind")
        tracer.emit(time, kind, **record)
    return collector.finalize(
        duration=duration,
        offered_load_kbps=offered_load_kbps,
        payload_bytes=payload_bytes,
    )

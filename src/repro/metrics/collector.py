"""Trace-driven metrics collection and the result record."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.sim.trace import TraceRecord, Tracer


class MetricsCollector:
    """Subscribes to the tracer and accumulates the paper's metrics.

    Attach before the run starts; call :meth:`finalize` after it ends to
    obtain an immutable :class:`SimulationResult`.

    ``reachability(src, dst) -> bool``, when provided, classifies each
    origination by ground-truth topology at send time, enabling the
    *reachable delivery fraction* — delivery measured only over packets a
    perfect router could have delivered.
    """

    def __init__(
        self,
        tracer: Tracer,
        reachability: Optional[Callable[[int, int], bool]] = None,
    ):
        self._reachability = reachability
        self.data_sent_reachable = 0
        self.data_received_reachable = 0
        self._reachable_uids: Set[int] = set()
        self.data_sent = 0
        self.data_received = 0
        self.duplicate_deliveries = 0
        self.delay_sum = 0.0
        self.bytes_received = 0

        self.mac_control_tx = 0  # RTS + CTS + ACK transmissions
        self.routing_tx = 0  # per-hop RREQ/RREP/RERR transmissions
        self.data_tx = 0  # per-hop data transmissions
        self.mac_failures = 0
        self.ifq_drops = 0

        self.rreq_sent = 0
        self.replies_received = 0
        self.good_replies = 0
        self.cache_replies_received = 0
        self.replies_sent_from_cache = 0
        self.replies_sent_from_target = 0
        self.cache_hits = 0
        self.invalid_cache_hits = 0
        self.link_breaks = 0
        self.salvages = 0
        self.drop_reasons: Counter = Counter()

        self._payload_bytes: Dict[int, int] = {}
        self._delivered_uids: Set[int] = set()

        tracer.subscribe("app.send", self._on_app_send)
        tracer.subscribe("app.recv", self._on_app_recv)
        tracer.subscribe("mac.tx", self._on_mac_tx)
        tracer.subscribe("mac.fail", self._on_mac_fail)
        tracer.subscribe("ifq.drop", self._on_ifq_drop)
        tracer.subscribe("dsr.rreq_sent", self._on_rreq_sent)
        tracer.subscribe("dsr.reply_recv", self._on_reply_recv)
        tracer.subscribe("dsr.reply_sent", self._on_reply_sent)
        tracer.subscribe("dsr.cache_use", self._on_cache_use)
        tracer.subscribe("dsr.link_break", self._on_link_break)
        tracer.subscribe("dsr.salvage", self._on_salvage)
        tracer.subscribe("dsr.drop", self._on_drop)

    # -- application ---------------------------------------------------------

    def _on_app_send(self, record: TraceRecord) -> None:
        self.data_sent += 1
        if self._reachability is not None:
            if self._reachability(record.fields["src"], record.fields["dst"]):
                self.data_sent_reachable += 1
                self._reachable_uids.add(record.fields["uid"])

    def _on_app_recv(self, record: TraceRecord) -> None:
        uid = record.fields["uid"]
        if uid in self._delivered_uids:
            self.duplicate_deliveries += 1
            return
        self._delivered_uids.add(uid)
        self.data_received += 1
        self.delay_sum += record.time - record.fields["born"]
        if uid in self._reachable_uids:
            self.data_received_reachable += 1

    # -- MAC -------------------------------------------------------------------

    def _on_mac_tx(self, record: TraceRecord) -> None:
        kind = record.fields["frame_kind"]
        if kind in ("rts", "cts", "ack"):
            self.mac_control_tx += 1
            return
        pkt_kind = record.fields.get("pkt_kind")
        if pkt_kind == "data":
            self.data_tx += 1
        elif pkt_kind is not None:
            self.routing_tx += 1

    def _on_mac_fail(self, record: TraceRecord) -> None:
        self.mac_failures += 1

    def _on_ifq_drop(self, record: TraceRecord) -> None:
        self.ifq_drops += 1

    # -- DSR ---------------------------------------------------------------------

    def _on_rreq_sent(self, record: TraceRecord) -> None:
        self.rreq_sent += 1

    def _on_reply_recv(self, record: TraceRecord) -> None:
        self.replies_received += 1
        if record.fields.get("from_cache"):
            self.cache_replies_received += 1
        if record.fields.get("valid"):
            self.good_replies += 1

    def _on_reply_sent(self, record: TraceRecord) -> None:
        if record.fields.get("from_cache"):
            self.replies_sent_from_cache += 1
        else:
            self.replies_sent_from_target += 1

    def _on_cache_use(self, record: TraceRecord) -> None:
        self.cache_hits += 1
        if record.fields.get("valid") is False:
            self.invalid_cache_hits += 1

    def _on_link_break(self, record: TraceRecord) -> None:
        self.link_breaks += 1

    def _on_salvage(self, record: TraceRecord) -> None:
        self.salvages += 1

    def _on_drop(self, record: TraceRecord) -> None:
        self.drop_reasons[record.fields["reason"]] += 1

    # -- result ------------------------------------------------------------------

    def note_payload(self, uid: int, payload_bytes: int) -> None:
        self._payload_bytes[uid] = payload_bytes

    def finalize(
        self,
        duration: float,
        offered_load_kbps: Optional[float] = None,
        payload_bytes: int = 512,
    ) -> "SimulationResult":
        received_kbits = self.data_received * payload_bytes * 8 / 1000.0
        return SimulationResult(
            duration=duration,
            data_sent=self.data_sent,
            data_received=self.data_received,
            data_sent_reachable=self.data_sent_reachable if self._reachability else None,
            data_received_reachable=(
                self.data_received_reachable if self._reachability else None
            ),
            duplicate_deliveries=self.duplicate_deliveries,
            delay_sum=self.delay_sum,
            mac_control_tx=self.mac_control_tx,
            routing_tx=self.routing_tx,
            data_tx=self.data_tx,
            mac_failures=self.mac_failures,
            ifq_drops=self.ifq_drops,
            rreq_sent=self.rreq_sent,
            replies_received=self.replies_received,
            good_replies=self.good_replies,
            cache_replies_received=self.cache_replies_received,
            replies_sent_from_cache=self.replies_sent_from_cache,
            replies_sent_from_target=self.replies_sent_from_target,
            cache_hits=self.cache_hits,
            invalid_cache_hits=self.invalid_cache_hits,
            link_breaks=self.link_breaks,
            salvages=self.salvages,
            drop_reasons=dict(self.drop_reasons),
            offered_load_kbps=offered_load_kbps,
            throughput_kbps=received_kbits / duration if duration > 0 else 0.0,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything a benchmark needs to print one row of a paper table."""

    duration: float
    data_sent: int
    data_received: int
    duplicate_deliveries: int
    delay_sum: float
    mac_control_tx: int
    routing_tx: int
    data_tx: int
    mac_failures: int
    ifq_drops: int
    rreq_sent: int
    replies_received: int
    good_replies: int
    cache_replies_received: int
    replies_sent_from_cache: int
    replies_sent_from_target: int
    cache_hits: int
    invalid_cache_hits: int
    link_breaks: int
    salvages: int
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    offered_load_kbps: Optional[float] = None
    throughput_kbps: float = 0.0
    data_sent_reachable: Optional[int] = None
    data_received_reachable: Optional[int] = None

    # -- the paper's metrics ---------------------------------------------------

    @property
    def packet_delivery_fraction(self) -> float:
        """Delivered / originated data packets (paper metric i)."""
        if self.data_sent == 0:
            return 0.0
        return self.data_received / self.data_sent

    @property
    def average_delay(self) -> float:
        """Mean end-to-end delay over delivered packets, seconds (metric ii)."""
        if self.data_received == 0:
            return 0.0
        return self.delay_sum / self.data_received

    @property
    def normalized_overhead(self) -> float:
        """(routing + MAC control transmissions) per delivered packet
        (metric iii); counted per hop as in the paper."""
        if self.data_received == 0:
            return float("inf") if (self.routing_tx + self.mac_control_tx) else 0.0
        return (self.routing_tx + self.mac_control_tx) / self.data_received

    @property
    def reachable_delivery_fraction(self) -> Optional[float]:
        """Delivery fraction over topologically-deliverable packets only
        (None when the run did not track reachability)."""
        if self.data_sent_reachable is None:
            return None
        if self.data_sent_reachable == 0:
            return 0.0
        return (self.data_received_reachable or 0) / self.data_sent_reachable

    @property
    def pct_good_replies(self) -> float:
        """% of route replies received at sources with a fully live route."""
        if self.replies_received == 0:
            return 0.0
        return 100.0 * self.good_replies / self.replies_received

    @property
    def pct_invalid_cache_hits(self) -> float:
        """% of cache hits that produced an already-dead route."""
        if self.cache_hits == 0:
            return 0.0
        return 100.0 * self.invalid_cache_hits / self.cache_hits

    def to_dict(self) -> Dict[str, float]:
        """Flat dict of derived metrics + headline counters (for tables)."""
        return {
            "pdf": self.packet_delivery_fraction,
            "delay": self.average_delay,
            "overhead": self.normalized_overhead,
            "throughput_kbps": self.throughput_kbps,
            "good_replies_pct": self.pct_good_replies,
            "invalid_cache_pct": self.pct_invalid_cache_hits,
            "data_sent": float(self.data_sent),
            "data_received": float(self.data_received),
            "routing_tx": float(self.routing_tx),
            "mac_control_tx": float(self.mac_control_tx),
            "link_breaks": float(self.link_breaks),
        }

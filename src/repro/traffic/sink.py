"""Traffic sink: records what the application layer actually received."""

from __future__ import annotations

from typing import List

from repro.net.node import Node
from repro.net.packet import Packet


class Sink:
    """Attaches to a node's application receive hook and keeps counts.

    Most accounting happens in :mod:`repro.metrics` via trace events; the
    sink is the app-level view used by examples and tests.
    """

    def __init__(self, node: Node):
        self._node = node
        self.received = 0
        self.bytes_received = 0
        self.uids: List[int] = []
        previous = node.app_receive

        def _receive(packet: Packet) -> None:
            self.received += 1
            self.bytes_received += packet.payload_bytes
            self.uids.append(packet.uid)
            previous(packet)

        node.app_receive = _receive

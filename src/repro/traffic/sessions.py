"""Random source-destination session generation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Session:
    src: int
    dst: int
    start: float


def random_sessions(
    num_nodes: int,
    num_sessions: int,
    rng: np.random.Generator,
    start_window: float = 10.0,
) -> List[Session]:
    """Draw ``num_sessions`` source-destination pairs spread over the network.

    Distinct sources (one CBR stream per source node, like the paper's 25
    pairs in a 100-node network); destinations are any other node.  Start
    times are uniform in ``[0, start_window]`` — "established at random
    times near the beginning of the simulation".
    """
    if num_sessions > num_nodes:
        raise ConfigurationError(
            f"cannot pick {num_sessions} distinct sources from {num_nodes} nodes"
        )
    if num_nodes < 2:
        raise ConfigurationError("need at least two nodes for traffic")
    sources = rng.choice(num_nodes, size=num_sessions, replace=False)
    sessions: List[Session] = []
    for src in sources:
        dst = int(rng.integers(0, num_nodes - 1))
        if dst >= src:
            dst += 1  # uniform over nodes != src
        start = float(rng.uniform(0.0, start_window))
        sessions.append(Session(src=int(src), dst=dst, start=start))
    return sessions

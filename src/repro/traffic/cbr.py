"""Constant-bit-rate traffic source."""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.sim.engine import Simulator


class CbrSource:
    """Sends fixed-size packets to one destination at a constant rate.

    Matches the paper's CBR/UDP sources: no congestion reaction, no
    retransmission — every loss shows up in the delivery fraction.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: int,
        rate: float,
        payload_bytes: int = 512,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if rate <= 0:
            raise ConfigurationError("rate must be positive (packets/second)")
        if payload_bytes <= 0:
            raise ConfigurationError("payload_bytes must be positive")
        if stop is not None and stop < start:
            raise ConfigurationError("stop must be >= start")
        self._sim = sim
        self._node = node
        self.dst = dst
        self.rate = rate
        self.interval = 1.0 / rate
        self.payload_bytes = payload_bytes
        self.start_time = start
        self.stop_time = stop
        self.packets_sent = 0
        sim.schedule_at(start, self._send_next)

    def _send_next(self) -> None:
        if self.stop_time is not None and self._sim.now >= self.stop_time:
            return
        self._node.send_data(self.dst, self.payload_bytes)
        self.packets_sent += 1
        self._sim.schedule(self.interval, self._send_next)

"""Application-level traffic: CBR sources, sinks and session wiring.

The paper's workload: 25 constant-bit-rate (CBR) sessions over UDP-like
datagrams of 512 bytes, source-destination pairs spread randomly over the
network, all sessions starting near the beginning of the run and staying
active to the end.  The sending rate per session is the offered-load knob
(Fig. 4).
"""

from repro.traffic.cbr import CbrSource
from repro.traffic.sink import Sink
from repro.traffic.sessions import Session, random_sessions
from repro.traffic.tcp import TcpAck, TcpSegment, TcpSink, TcpSource

__all__ = [
    "CbrSource",
    "Sink",
    "Session",
    "random_sessions",
    "TcpSource",
    "TcpSink",
    "TcpSegment",
    "TcpAck",
]

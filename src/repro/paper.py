"""One-call reproduction of the paper's entire evaluation.

``reproduce()`` runs every table and figure from Marina & Das section 4.3
at a chosen scale and returns a :class:`PaperReport` that renders to
markdown — the library-level equivalent of running the whole benchmark
suite, for use from scripts and notebooks:

    from repro.paper import reproduce
    report = reproduce(scale="quick", seeds=[1, 2])
    print(report.to_markdown())

Scales: ``quick`` (12-node sanity pass, ~1 minute), ``scaled`` (the
benchmark default, tens of minutes for full seeds), ``paper`` (the full
100-node setup; hours in pure Python).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.runner import SweepEngine
from repro.analysis.series import SweepPoint
from repro.analysis.stats import Aggregate
from repro.analysis.tables import format_series, format_table
from repro.core.config import PAPER_VARIANTS, DsrConfig
from repro.scenarios import presets
from repro.scenarios.config import ScenarioConfig

_SCALES = ("quick", "scaled", "paper")

ProgressFn = Callable[[str], None]


def _base_scenario(scale: str, pause: float, rate: float, dsr: DsrConfig, seed: int) -> ScenarioConfig:
    if scale == "paper":
        return presets.paper_scenario(pause_time=pause, packet_rate=rate, dsr=dsr, seed=seed)
    if scale == "scaled":
        return presets.scaled_scenario(pause_time=pause, packet_rate=rate, dsr=dsr, seed=seed)
    return presets.tiny_scenario(dsr=dsr, seed=seed, pause_time=pause).but(
        packet_rate=rate, duration=30.0
    )


def _timeout_axis(scale: str) -> List[float]:
    if scale == "paper":
        return [1.0, 5.0, 10.0, 30.0, 50.0]
    return [0.3, 1.0, 3.0, 10.0, 30.0]


def _pause_axis(scale: str) -> List[float]:
    duration = {"paper": 500.0, "scaled": presets.SCALED_DURATION, "quick": 30.0}[scale]
    return [0.0, duration / 3.0, duration]


@dataclass
class PaperReport:
    """Every reproduced artifact, renderable to markdown."""

    scale: str
    seeds: List[int]
    fig1: List[SweepPoint]
    fig2: Dict[str, List[SweepPoint]]
    table3: Dict[str, Aggregate]
    fig4: Dict[str, List[SweepPoint]]
    #: Engine accounting for the whole reproduction: simulations executed
    #: vs points served from the result cache or deduplicated (the paper's
    #: figures share their pause-0 points, so deduped > 0 even cold).
    sweep_stats: Dict[str, int] = field(default_factory=dict)

    def to_markdown(self) -> str:
        sections = [
            f"# Reproduction report ({self.scale} scale, seeds {self.seeds})",
            "",
            "## Figure 1 — metrics vs route-expiry timeout (pause 0, 3 pkt/s)",
            "```",
            format_series(self.fig1, x_title="timeout"),
            "```",
            "## Figure 2 — metrics vs pause time, per variant",
        ]
        for name, points in self.fig2.items():
            sections += [f"### {name}", "```", format_series(points, x_title="pause"), "```"]
        sections += [
            "## Table 3 — cache-correctness metrics (pause 0)",
            "```",
            format_table(
                self.table3,
                metrics=("good_replies_pct", "invalid_cache_pct", "pdf"),
                row_title="protocol",
            ),
            "```",
            "## Figure 4 — metrics vs offered load, per variant",
        ]
        for name, points in self.fig4.items():
            sections += [
                f"### {name}",
                "```",
                format_series(
                    points,
                    metrics=("throughput_kbps", "delay", "overhead"),
                    x_title="rate",
                ),
                "```",
            ]
        return "\n".join(sections)


@dataclass
class LossSweepReport:
    """Cache-strategy comparison across link-loss levels, per radio profile.

    The figure-style companion to :class:`PaperReport` for the loss-driven
    regime: the network is frozen (pause = duration) so every link break is
    caused by the probabilistic channel, and each variant of the paper's
    caching techniques is swept across ``levels`` of flat link loss.
    """

    scale: str
    profile: str
    seeds: List[int]
    levels: List[float]
    variants: Dict[str, List[SweepPoint]]
    sweep_stats: Dict[str, int] = field(default_factory=dict)

    def to_markdown(self) -> str:
        sections = [
            f"# Loss sweep ({self.scale} scale, profile {self.profile}, "
            f"seeds {self.seeds})",
            "",
            "Metrics vs link-loss probability, static network "
            "(loss-driven link breaks only).",
        ]
        for name, points in self.variants.items():
            sections += [
                f"## {name}",
                "```",
                format_series(points, x_title="loss"),
                "```",
            ]
        return "\n".join(sections)


def loss_sweep(
    scale: str = "quick",
    seeds: Sequence[int] = (1,),
    levels: Sequence[float] = (0.0, 0.15, 0.3),
    profile: str = "wavelan",
    variants: Optional[Sequence[str]] = None,
    progress: Optional[ProgressFn] = None,
    processes: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    engine: Optional[SweepEngine] = None,
) -> LossSweepReport:
    """Sweep every cache strategy across link-loss levels on one profile.

    Runs through the same :class:`SweepEngine` as :func:`reproduce`, so
    points are cached content-addressed — the profile and loss level are
    part of the scenario's canonical JSON and therefore of the cache key.
    """
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {_SCALES}, got {scale!r}")
    seeds = list(seeds)
    levels = list(levels)
    say = progress or (lambda message: None)
    engine = engine or SweepEngine.create(processes=processes, cache_dir=cache_dir)

    def scenario(level: float, seed: int, dsr: DsrConfig) -> ScenarioConfig:
        base = _base_scenario(scale, 0.0, 3.0, dsr, seed)
        # Freeze the network: mobility contributes no link breaks, so the
        # sweep isolates the loss-driven regime the profiles exist to study.
        return base.but(
            pause_time=base.duration,
            radio_profile=profile,
            link_loss=level,
        )

    results: Dict[str, List[SweepPoint]] = {}
    for name, dsr in PAPER_VARIANTS.items():
        if variants is not None and name not in variants:
            continue
        say(f"loss sweep: {name}")
        results[name] = engine.sweep(
            lambda level, seed, d=dsr: scenario(level, seed, d),
            levels,
            seeds,
            label=lambda level: f"loss {level:g}",
        )

    return LossSweepReport(
        scale=scale,
        profile=profile,
        seeds=seeds,
        levels=levels,
        variants=results,
        sweep_stats=engine.session_stats(),
    )


def reproduce(
    scale: str = "quick",
    seeds: Sequence[int] = (1,),
    progress: Optional[ProgressFn] = None,
    fig2_variants: Optional[Sequence[str]] = None,
    fig4_variants: Sequence[str] = ("DSR", "AllTechniques"),
    processes: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    engine: Optional[SweepEngine] = None,
) -> PaperReport:
    """Run the paper's four artifacts and return a report.

    All figures execute through one :class:`SweepEngine`:
    ``processes`` fans the sweep points out over worker processes
    (default: every core; ``1`` forces in-process execution) and
    ``cache_dir`` enables the on-disk result cache so a re-run only
    simulates changed points.  Results are identical to serial execution —
    the engine preserves per-seed determinism and aggregation order.
    Pass a prebuilt ``engine`` to share its cache/memo across calls.
    """
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {_SCALES}, got {scale!r}")
    seeds = list(seeds)
    say = progress or (lambda message: None)
    engine = engine or SweepEngine.create(processes=processes, cache_dir=cache_dir)
    sweep = engine.sweep
    compare_variants = engine.compare_variants

    say("figure 1: timeout sweep")
    fig1 = sweep(
        lambda timeout, seed: _base_scenario(
            scale, 0.0, 3.0, DsrConfig.with_static_expiry(timeout), seed
        ),
        _timeout_axis(scale),
        seeds,
        label=lambda timeout: f"static {timeout:g}s",
    )
    fig1 = (
        sweep(
            lambda idx, seed: _base_scenario(
                scale,
                0.0,
                3.0,
                DsrConfig.base() if idx == 0 else DsrConfig.with_adaptive_expiry(),
                seed,
            ),
            [0, 1],
            seeds,
            label=lambda idx: "no timeout" if idx == 0 else "adaptive",
        )
        + fig1
    )

    say("figure 2: mobility sweep")
    variant_names = list(fig2_variants or PAPER_VARIANTS)
    fig2: Dict[str, List[SweepPoint]] = {}
    for name in variant_names:
        dsr = PAPER_VARIANTS[name]
        fig2[name] = sweep(
            lambda pause, seed, d=dsr: _base_scenario(scale, pause, 3.0, d, seed),
            _pause_axis(scale),
            seeds,
            label=lambda pause: f"{pause:g}",
        )

    say("table 3: cache metrics")
    table3 = compare_variants(
        {
            name: (lambda seed, d=dsr: _base_scenario(scale, 0.0, 3.0, d, seed))
            for name, dsr in PAPER_VARIANTS.items()
        },
        seeds,
    )

    say("figure 4: load sweep")
    fig4: Dict[str, List[SweepPoint]] = {}
    for name in fig4_variants:
        dsr = PAPER_VARIANTS[name]
        fig4[name] = sweep(
            lambda rate, seed, d=dsr: _base_scenario(scale, 0.0, rate, d, seed),
            [1.0, 3.0, 6.0],
            seeds,
            label=lambda rate: f"{rate:g} pkt/s",
        )

    return PaperReport(
        scale=scale,
        seeds=seeds,
        fig1=fig1,
        fig2=fig2,
        table3=table3,
        fig4=fig4,
        sweep_stats=engine.session_stats(),
    )

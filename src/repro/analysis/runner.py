"""Parallel experiment execution.

A figure is dozens of independent simulations; this runner fans them out
over worker processes.  Configurations travel as JSON dicts (see
:mod:`repro.scenarios.io`) so workers rebuild everything from scratch —
no shared state, perfectly reproducible.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.series import SweepPoint
from repro.analysis.stats import aggregate
from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_from_dict, scenario_to_dict


def _run_payload(payload: dict) -> SimulationResult:
    from repro.scenarios.builder import run_scenario

    return run_scenario(scenario_from_dict(payload))


def run_many(
    configs: Sequence[ScenarioConfig],
    processes: Optional[int] = None,
) -> List[SimulationResult]:
    """Run every configuration, in order, across worker processes.

    ``processes=1`` (or a single config) degrades to in-process execution,
    which keeps debugging and coverage runs simple.
    """
    payloads = [scenario_to_dict(config) for config in configs]
    if processes == 1 or len(payloads) <= 1:
        return [_run_payload(payload) for payload in payloads]
    processes = processes or min(len(payloads), multiprocessing.cpu_count())
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=processes) as pool:
        return pool.map(_run_payload, payloads)


def parallel_sweep(
    make_config: Callable[[float, int], ScenarioConfig],
    xs: Sequence[float],
    seeds: Sequence[int],
    processes: Optional[int] = None,
    label: Callable[[float], str] = lambda x: f"{x:g}",
) -> List[SweepPoint]:
    """Parallel equivalent of :func:`repro.analysis.series.sweep`."""
    grid = [(x, seed) for x in xs for seed in seeds]
    results = run_many(
        [make_config(x, seed) for x, seed in grid], processes=processes
    )
    by_x: Dict[float, List[SimulationResult]] = {x: [] for x in xs}
    for (x, _seed), result in zip(grid, results):
        by_x[x].append(result)
    return [
        SweepPoint(x=x, label=label(x), aggregate=aggregate(by_x[x])) for x in xs
    ]

"""Sweep execution engine: parallel, incremental, load-balanced.

A figure is dozens of independent simulations; :class:`SweepEngine` fans
them out over worker processes and skips the ones it has already run.
Configurations travel as JSON dicts (see :mod:`repro.scenarios.io`) so
workers rebuild everything from scratch — no shared state, perfectly
reproducible — and every run is identified by its content hash
(:func:`repro.analysis.cache.scenario_hash`).

Execution pipeline, identical for in-process (``processes=1``) and pooled
modes — the only thing that differs is which map drains the task list:

1. every config becomes an indexed ``(key, payload)`` task;
2. keys already resolved (session memo, then on-disk cache) short-circuit;
3. duplicate keys within the batch collapse to one simulation;
4. remaining tasks are ordered longest-job-first (low-pause / high-load
   scenarios dominate wall time, so they must start early), optionally
   grouped into seed batches (``seed_batch`` > 1 chunks replications of one
   grid point into a single dispatch unit, amortising process spawn and
   import cost across seeds), and drained via ``imap_unordered`` for pool
   load balancing;
5. a task whose worker raises or dies is retried in the parent process, a
   bounded number of times; failures that survive the retries raise
   :class:`SweepExecutionError` — never silently dropped;
6. results are written back by original index, so aggregation order is
   byte-identical to the serial :func:`repro.analysis.series.sweep` path.
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cache import CacheStats, ResultCache, scenario_hash
from repro.analysis.series import (
    SweepPoint,
    sweep,
    compare_variants as _compare_variants,
)
from repro.analysis.stats import Aggregate
from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_from_dict, scenario_to_dict

TaskFn = Callable[[dict], SimulationResult]


def _run_payload(payload: dict) -> SimulationResult:
    """The unit of work: rebuild the scenario and simulate it."""
    from repro.scenarios.builder import run_scenario

    return run_scenario(scenario_from_dict(payload))


def _guarded(
    task_fn: TaskFn, task: Tuple[str, dict]
) -> Tuple[str, Optional[SimulationResult], Optional[str], float]:
    """Run one task, returning errors as data so a bad payload cannot break
    the pool's result iterator.  The returned wall time is measured in the
    executing process (the worker, for pooled mode) so the parent's sweep
    telemetry attributes simulation cost, not pool latency."""
    key, payload = task
    # Operator-facing per-task accounting; never feeds simulation state.
    start = time.perf_counter()  # repro-lint: disable=DET001
    try:
        result = task_fn(payload)
        return key, result, None, time.perf_counter() - start  # repro-lint: disable=DET001
    except Exception as exc:  # surfaced to the parent, retried there
        wall = time.perf_counter() - start  # repro-lint: disable=DET001
        return key, None, f"{type(exc).__name__}: {exc}", wall


def _guarded_batch(
    task_fn: TaskFn, batch: List[Tuple[str, dict]]
) -> List[Tuple[str, Optional[SimulationResult], Optional[str], float]]:
    """Run a batch of tasks sequentially in one process.

    One pool dispatch covers every replication in the batch, so process
    spawn, interpreter/numpy import and warm allocator state are amortised
    across the batch instead of paid per seed.  Each task is still
    individually guarded: one bad payload fails alone and is retried alone.
    """
    return [_guarded(task_fn, task) for task in batch]


def grid_point_key(payload: dict) -> str:
    """Canonical identity of a payload's sweep grid point (seed excluded).

    Replications of one grid point differ only in ``payload["seed"]``;
    batching groups by everything else so a batch is "the same scenario, N
    seeds" — the unit the paper's mean-and-CI aggregation consumes.  Shard
    packing (:mod:`repro.service.leases`) groups by the same identity so a
    shard is whole seed batches of whole grid points.
    """
    from repro.scenarios.io import scenario_canonical_json

    reduced = {name: value for name, value in payload.items() if name != "seed"}
    return scenario_canonical_json(reduced)


#: Backwards-compatible alias for the former private name.
_grid_point_key = grid_point_key


def estimate_cost(payload: dict) -> float:
    """Relative wall-time estimate used for longest-job-first ordering.

    Event volume scales with offered traffic (sessions x rate x duration)
    and with topology churn: per-quantum neighbour work is ~quadratic in
    node count, and continuous motion (pause 0) roughly doubles routing
    traffic versus a static network.  Only the *ordering* matters, so the
    constants are coarse.
    """
    nodes = float(payload.get("num_nodes", 2))
    duration = float(payload.get("duration", 0.0))
    load = float(payload.get("num_sessions", 0)) * float(payload.get("packet_rate", 1.0))
    pause = min(float(payload.get("pause_time", 0.0)), duration)
    mobility = 2.0 - (pause / duration if duration > 0 else 1.0)
    return duration * (0.01 * nodes * nodes + load) * mobility


class SweepExecutionError(RuntimeError):
    """One or more sweep tasks failed every attempt."""

    def __init__(self, failures: Dict[str, str]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"{key[:12]}…: {err}" for key, err in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(self.failures)} sweep task(s) failed after retries: {detail}"
        )


class SweepInterrupted(RuntimeError):
    """A sweep was stopped (Ctrl-C / SIGINT) before every task finished.

    Raised by :meth:`SweepEngine.run` in place of the raw
    :class:`KeyboardInterrupt`: the worker pool has been terminated, every
    result settled so far has already been written to the cache, and a
    manifest line with ``"interrupted": true`` records the partial batch —
    so simply re-running the same sweep resumes from the cache.
    """

    def __init__(self, completed: int, abandoned: int, total: int):
        self.completed = completed
        self.abandoned = abandoned
        self.total = total
        super().__init__(
            f"sweep interrupted: {completed}/{total} config(s) resolved, "
            f"{abandoned} task(s) abandoned (completed work is cached; "
            "re-run to resume)"
        )


@dataclass(frozen=True)
class ProgressUpdate:
    """Snapshot passed to the progress callback after every completion."""

    total: int  # configs in this batch
    completed: int  # configs resolved so far (cached + simulated)
    executed: int  # simulations actually run so far
    cached: int  # configs served from memo/disk cache
    deduped: int  # configs sharing another config's simulation
    running: int  # upper bound on simulations in flight
    retries: int  # retry attempts performed so far
    elapsed_s: float
    eta_s: Optional[float]  # None until one simulation has finished
    # -- sweep telemetry (worker-measured, see _guarded) -------------------
    last_task_wall_s: Optional[float] = None  # wall of the newest simulation
    task_wall_total_s: float = 0.0  # summed simulation wall so far
    disk_cache_hits: int = 0  # resolved from the on-disk cache


ProgressFn = Callable[[ProgressUpdate], None]


@dataclass
class RunReport:
    """Results plus the accounting for one :meth:`SweepEngine.run` batch."""

    results: List[SimulationResult]
    total: int
    executed: int
    cache_hits: int
    deduped: int
    retries: int
    wall_s: float
    cache_stats: Optional[CacheStats] = None
    failures: Dict[str, str] = field(default_factory=dict)
    #: Worker-measured simulation wall per scenario hash (executed tasks only).
    task_walls: Dict[str, float] = field(default_factory=dict)


class SweepEngine:
    """Executes batches of scenario configs with caching and parallelism.

    One engine should live for a whole figure (or a whole paper
    reproduction): its in-memory memo dedupes identical points *across*
    batches — e.g. the pause-0 runs that Figure 2, Table 3 and Figure 4
    share — while the optional :class:`ResultCache` makes the dedup
    survive process restarts.
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
        task_fn: Optional[TaskFn] = None,
        manifest_path: Optional[os.PathLike] = None,
        seed_batch: int = 1,
    ):
        self.processes = processes
        self.cache = cache
        self.retries = max(0, retries)
        # Replications-per-dispatch: tasks sharing a grid point (identical
        # payload apart from the seed) are grouped into units of up to
        # ``seed_batch`` and executed sequentially inside one worker, so
        # per-process overhead (spawn, imports) and per-task IPC are paid
        # once per batch rather than once per seed.  1 keeps the historic
        # one-task-per-dispatch behaviour.
        if seed_batch < 1:
            raise ValueError("seed_batch must be >= 1")
        self.seed_batch = seed_batch
        self.progress = progress
        self._task_fn = task_fn or _run_payload
        self._memo: Dict[str, SimulationResult] = {}
        # Run manifest: one JSON line of telemetry per run() batch.  Lives
        # next to the result cache by default so `cat cache/manifest.jsonl`
        # answers "what did my sweeps cost and what came from the cache".
        if manifest_path is not None:
            self.manifest_path = Path(manifest_path)
        elif cache is not None:
            self.manifest_path = cache.root / "manifest.jsonl"
        else:
            self.manifest_path = None
        self._batches = 0
        # Accumulated across run() calls, for end-of-session reporting.
        self.total_executed = 0
        self.total_cache_hits = 0
        self.total_deduped = 0
        self.total_retries = 0
        self.total_task_wall_s = 0.0

    @classmethod
    def create(
        cls,
        processes: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        **kwargs,
    ) -> "SweepEngine":
        """Engine with an on-disk cache when ``cache_dir`` is given."""
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        return cls(processes=processes, cache=cache, **kwargs)

    # -- execution ---------------------------------------------------------

    def run(self, configs: Sequence[ScenarioConfig]) -> RunReport:
        """Run every configuration, in order; see the module docstring for
        the pipeline."""
        # Wall-clock here is operator-facing accounting (elapsed/ETA in
        # progress callbacks, RunReport.wall_s); it never feeds simulation
        # state, which runs purely on sim.now.
        start = time.perf_counter()  # repro-lint: disable=DET001
        payloads = [scenario_to_dict(config) for config in configs]
        keys = [scenario_hash(payload) for payload in payloads]

        results: List[Optional[SimulationResult]] = [None] * len(payloads)
        pending: Dict[str, List[int]] = {}
        cache_hits = 0
        for index, key in enumerate(keys):
            if key not in self._memo and self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    self._memo[key] = cached
                    cache_hits += 1
            if key in self._memo:
                results[index] = self._memo[key]
            else:
                pending.setdefault(key, []).append(index)
        # In-batch duplicates beyond cache hits: indices sharing a pending
        # key, plus memo hits from *previous* batches of this engine.
        resolved = len(payloads) - sum(len(v) for v in pending.values())
        deduped = (resolved - cache_hits) + sum(
            len(v) - 1 for v in pending.values()
        )

        tasks = sorted(
            ((key, payloads[indices[0]]) for key, indices in pending.items()),
            key=lambda task: estimate_cost(task[1]),
            reverse=True,
        )
        batches = self._batch_tasks(tasks)

        executed = 0
        retries = 0
        failures: Dict[str, str] = {}
        task_walls: Dict[str, float] = {}
        last_wall: List[Optional[float]] = [None]
        processes = self._resolve_processes(len(batches))

        def note_progress() -> None:
            if self.progress is None:
                return
            completed = sum(1 for r in results if r is not None)
            # Operator-facing progress clock, not simulation state.
            elapsed = time.perf_counter() - start  # repro-lint: disable=DET001
            remaining = len(tasks) - executed - len(failures)
            eta = None
            if executed:
                per_task = elapsed / executed
                eta = per_task * remaining / max(1, min(processes, remaining))
            self.progress(
                ProgressUpdate(
                    total=len(payloads),
                    completed=completed,
                    executed=executed,
                    cached=resolved,
                    deduped=deduped,
                    running=min(processes, max(0, remaining)),
                    retries=retries,
                    elapsed_s=elapsed,
                    eta_s=eta,
                    last_task_wall_s=last_wall[0],
                    task_wall_total_s=sum(task_walls.values()),
                    disk_cache_hits=cache_hits,
                )
            )

        def settle(key: str, result: SimulationResult) -> None:
            self._memo[key] = result
            if self.cache is not None:
                self.cache.put(key, result)
            for index in pending[key]:
                results[index] = result

        completions = self._completions(batches, processes)
        interrupted = False
        try:
            note_progress()
            for key, result, error, wall in completions:
                last_wall[0] = wall
                if error is not None:
                    failures[key] = error
                else:
                    executed += 1
                    task_walls[key] = wall
                    settle(key, result)
                note_progress()

            # Bounded in-parent retry of everything that failed, whatever the
            # cause (worker exception or crash) — deterministic and unaffected
            # by pool state.
            guarded = functools.partial(_guarded, self._task_fn)
            for _attempt in range(self.retries):
                if not failures:
                    break
                retry_tasks = [
                    (key, payloads[pending[key][0]]) for key in failures
                ]
                failures = {}
                for task in retry_tasks:
                    retries += 1
                    key, result, error, wall = guarded(task)
                    last_wall[0] = wall
                    if error is not None:
                        failures[key] = error
                    else:
                        executed += 1
                        task_walls[key] = wall
                        settle(key, result)
                    note_progress()
        except KeyboardInterrupt:
            interrupted = True
        finally:
            # Terminates the pool when we stopped mid-drain (generator close
            # runs the Pool context manager's __exit__); no-op when drained.
            completions.close()
        if failures and not interrupted:
            raise SweepExecutionError(failures)

        self.total_executed += executed
        self.total_cache_hits += cache_hits
        self.total_deduped += deduped
        self.total_retries += retries
        self.total_task_wall_s += sum(task_walls.values())
        self._batches += 1
        report = RunReport(
            # All settled, except on the interrupted path where the report
            # only feeds the manifest and is never returned.
            results=list(results),  # type: ignore[arg-type]
            total=len(payloads),
            executed=executed,
            cache_hits=cache_hits,
            deduped=deduped,
            retries=retries,
            # Operator-facing batch accounting, not simulation state.
            wall_s=time.perf_counter() - start,  # repro-lint: disable=DET001
            cache_stats=self.cache.stats if self.cache is not None else None,
            task_walls=task_walls,
        )
        self._append_manifest(report, interrupted=interrupted)
        if interrupted:
            completed = sum(1 for r in results if r is not None)
            raise SweepInterrupted(
                completed=completed,
                abandoned=len(payloads) - completed,
                total=len(payloads),
            )
        return report

    def run_results(self, configs: Sequence[ScenarioConfig]) -> List[SimulationResult]:
        """Just the results, in config order (the :data:`RunnerFn` shape)."""
        return self.run(configs).results

    def _resolve_processes(self, n_tasks: int) -> int:
        processes = self.processes or multiprocessing.cpu_count()
        return max(1, min(processes, n_tasks))

    def _batch_tasks(
        self, tasks: List[Tuple[str, dict]]
    ) -> List[List[Tuple[str, dict]]]:
        """Group the (cost-ordered) task list into dispatch units.

        With ``seed_batch`` == 1 every task is its own unit.  Otherwise tasks
        sharing a grid point (identical payload apart from the seed) are
        chunked into runs of up to ``seed_batch``; units are then re-ordered
        longest-total-first so the pool's load balancing keeps working at
        batch granularity.  Grouping is deterministic: groups form in task
        (cost) order and the final sort is stable.
        """
        if self.seed_batch <= 1:
            return [[task] for task in tasks]
        groups: Dict[str, List[Tuple[str, dict]]] = {}
        group_order: List[str] = []
        for task in tasks:
            point = grid_point_key(task[1])
            if point not in groups:
                groups[point] = []
                group_order.append(point)
            groups[point].append(task)
        batches: List[List[Tuple[str, dict]]] = []
        for point in group_order:
            group = groups[point]
            for lo in range(0, len(group), self.seed_batch):
                batches.append(group[lo : lo + self.seed_batch])
        batches.sort(
            key=lambda batch: sum(estimate_cost(payload) for _, payload in batch),
            reverse=True,
        )
        return batches

    def _completions(
        self, batches: List[List[Tuple[str, dict]]], processes: int
    ) -> Iterable[Tuple[str, Optional[SimulationResult], Optional[str], float]]:
        """Drain dispatch units, yielding per-task ``(key, result, error,
        wall_s)`` tuples as they finish.

        Both branches consume the same longest-job-first unit list through
        the same guarded wrapper; pooled mode merely overlaps units.  A
        pooled unit's results arrive together when the whole unit finishes
        (progress is batch-granular under ``seed_batch`` > 1).
        """
        guarded_batch = functools.partial(_guarded_batch, self._task_fn)
        if processes <= 1 or len(batches) <= 1:
            for batch in batches:
                yield from guarded_batch(batch)
            return
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=processes) as pool:
            for settled in pool.imap_unordered(guarded_batch, batches):
                yield from settled

    # -- figure-shaped conveniences ---------------------------------------

    def sweep(
        self,
        make_config: Callable[[float, int], ScenarioConfig],
        xs: Sequence[float],
        seeds: Sequence[int],
        label: Callable[[float], str] = lambda x: f"{x:g}",
    ) -> List[SweepPoint]:
        """Engine-backed :func:`repro.analysis.series.sweep`."""
        return sweep(make_config, xs, seeds, label=label, runner=self.run_results)

    def compare_variants(
        self,
        variants: Dict[str, Callable[[int], ScenarioConfig]],
        seeds: Sequence[int],
    ) -> Dict[str, Aggregate]:
        """Engine-backed :func:`repro.analysis.series.compare_variants`."""
        return _compare_variants(variants, seeds, runner=self.run_results)

    def _append_manifest(self, report: RunReport, interrupted: bool = False) -> None:
        """Persist one telemetry line for a finished batch (best effort)."""
        if self.manifest_path is None:
            return
        walls = sorted(report.task_walls.items(), key=lambda i: (-i[1], i[0]))
        entry: Dict[str, object] = {
            "batch": self._batches,
            "total": report.total,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "deduped": report.deduped,
            "retries": report.retries,
            "wall_s": round(report.wall_s, 6),
            "task_wall_total_s": round(sum(report.task_walls.values()), 6),
            "tasks": [
                {"key": key, "wall_s": round(wall, 6)} for key, wall in walls
            ],
        }
        if interrupted:
            entry["interrupted"] = True
        if report.cache_stats is not None:
            entry["cache"] = {
                "hits": report.cache_stats.hits,
                "misses": report.cache_stats.misses,
                "stores": report.cache_stats.stores,
            }
        try:
            self.manifest_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.manifest_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError:
            # Telemetry must never fail a sweep (read-only cache dir, etc.).
            pass

    def session_stats(self) -> Dict[str, int]:
        """Accumulated executed/cached/deduped counts across run() calls."""
        return {
            "executed": self.total_executed,
            "cache_hits": self.total_cache_hits,
            "deduped": self.total_deduped,
            "retries": self.total_retries,
        }


# -- module-level conveniences (historic API, now engine-backed) -----------


def run_many(
    configs: Sequence[ScenarioConfig],
    processes: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    retries: int = 1,
    seed_batch: int = 1,
) -> List[SimulationResult]:
    """Run every configuration, in order, across worker processes.

    ``processes=1`` (or a single config) degrades to in-process execution
    through the *same* indexed pipeline — caching, dedup and result order
    are identical in both modes.  ``seed_batch`` > 1 groups replications of
    one grid point into a single dispatch (see :class:`SweepEngine`);
    results are identical for any batch size.
    """
    engine = SweepEngine(
        processes=processes,
        cache=cache,
        progress=progress,
        retries=retries,
        seed_batch=seed_batch,
    )
    return engine.run_results(configs)


def parallel_sweep(
    make_config: Callable[[float, int], ScenarioConfig],
    xs: Sequence[float],
    seeds: Sequence[int],
    processes: Optional[int] = None,
    label: Callable[[float], str] = lambda x: f"{x:g}",
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
) -> List[SweepPoint]:
    """Parallel (and optionally cached) equivalent of
    :func:`repro.analysis.series.sweep`."""
    engine = SweepEngine(processes=processes, cache=cache, progress=progress)
    return engine.sweep(make_config, xs, seeds, label=label)

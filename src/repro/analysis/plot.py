"""Terminal line charts for sweep results.

The benchmark harness runs offline (no matplotlib); these renderers draw
figure-shaped ASCII charts so the paper's curve shapes — crossovers, U
curves, convergence at high pause times — are visible straight from the
bench output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.series import SweepPoint


def render_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Plot one or more named series over a shared categorical x-axis.

    Each series is drawn with its own marker; the legend maps markers to
    names.  Values are linearly scaled into ``height`` rows.
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must have one value per x label")
    if height < 2 or width < 10:
        raise ValueError("chart too small")

    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values if v == v]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    columns = len(x_labels)
    # Horizontal positions for each x index, spread across the width.
    if columns == 1:
        positions = [width // 2]
    else:
        positions = [round(i * (width - 1) / (columns - 1)) for i in range(columns)]

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for i, value in enumerate(values):
            if value != value:  # NaN
                continue
            row = round((hi - value) / (hi - lo) * (height - 1))
            grid[row][positions[i]] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    top = f"{hi:.4g}"
    bottom = f"{lo:.4g}"
    label_width = max(len(top), len(bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width

    lines.append(axis)
    tick_row = [" "] * width
    for i, label in enumerate(x_labels):
        start = min(positions[i], width - len(str(label)))
        for j, ch in enumerate(str(label)):
            if 0 <= start + j < width:
                tick_row[start + j] = ch
    lines.append(" " * label_width + "  " + "".join(tick_row))

    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  [{legend}]")
    return "\n".join(lines)


def render_sweep(
    points_by_variant: Dict[str, Sequence[SweepPoint]],
    metric: str,
    height: int = 12,
    width: int = 60,
) -> str:
    """Chart one metric of a multi-variant sweep (e.g. Fig. 2's PDF panel)."""
    first = next(iter(points_by_variant.values()))
    x_labels = [point.label for point in first]
    series = {
        name: [point.metric(metric) for point in points]
        for name, points in points_by_variant.items()
    }
    return render_chart(series, x_labels, height=height, width=width, y_label=metric)

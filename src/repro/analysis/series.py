"""Parameter sweeps: run a scenario family over an axis, multiple seeds per
point, and collect aggregated metrics — the shape of every figure in the
paper's evaluation.

The grid construction and per-point aggregation live in
:func:`sweep_grid` / :func:`points_from_results` so that the serial path
here and the parallel/cached path in :mod:`repro.analysis.runner` are the
*same* code operating on the same flat ``(x, seed)`` order — the two modes
cannot drift apart in aggregation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import Aggregate, aggregate
from repro.metrics.collector import SimulationResult
from repro.scenarios.builder import run_scenario
from repro.scenarios.config import ScenarioConfig

#: Runs every configuration, in order, and returns one result each.
RunnerFn = Callable[[Sequence[ScenarioConfig]], List[SimulationResult]]


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis value of a figure, averaged over seeds."""

    x: float
    label: str
    aggregate: Aggregate

    def metric(self, name: str) -> float:
        return self.aggregate.means[name]


def sweep_grid(
    xs: Sequence[float], seeds: Sequence[int]
) -> List[Tuple[float, int]]:
    """The flat ``(x, seed)`` evaluation order every sweep mode shares."""
    return [(x, seed) for x in xs for seed in seeds]


def points_from_results(
    xs: Sequence[float],
    grid: Sequence[Tuple[float, int]],
    results: Sequence[SimulationResult],
    label: Callable[[float], str],
) -> List[SweepPoint]:
    """Fold flat grid-ordered results back into per-x aggregates."""
    by_x: Dict[float, List[SimulationResult]] = {x: [] for x in xs}
    for (x, _seed), result in zip(grid, results):
        by_x[x].append(result)
    return [
        SweepPoint(x=x, label=label(x), aggregate=aggregate(by_x[x])) for x in xs
    ]


def _serial_runner(configs: Sequence[ScenarioConfig]) -> List[SimulationResult]:
    return [run_scenario(config) for config in configs]


def sweep(
    make_config: Callable[[float, int], ScenarioConfig],
    xs: Sequence[float],
    seeds: Sequence[int],
    label: Callable[[float], str] = lambda x: f"{x:g}",
    runner: Optional[RunnerFn] = None,
) -> List[SweepPoint]:
    """Run ``make_config(x, seed)`` for every (x, seed) pair.

    Seeds vary the mobility scenario while the traffic pattern stays tied
    to the seed stream, mirroring the paper's "identical traffic models,
    different randomly generated mobility scenarios".

    ``runner`` swaps the execution strategy (e.g.
    :meth:`repro.analysis.runner.SweepEngine.run_results` for parallel +
    cached execution) without touching grid order or aggregation.
    """
    grid = sweep_grid(xs, seeds)
    configs = [make_config(x, seed) for x, seed in grid]
    results = (runner or _serial_runner)(configs)
    return points_from_results(xs, grid, results, label)


def compare_variants(
    variants: Dict[str, Callable[[int], ScenarioConfig]],
    seeds: Sequence[int],
    runner: Optional[RunnerFn] = None,
) -> Dict[str, Aggregate]:
    """Run several protocol variants over the same seeds (one table row
    each), e.g. the paper's Table 3."""
    run = runner or _serial_runner
    output: Dict[str, Aggregate] = {}
    for name, make_config in variants.items():
        results = run([make_config(seed) for seed in seeds])
        output[name] = aggregate(results)
    return output

"""Parameter sweeps: run a scenario family over an axis, multiple seeds per
point, and collect aggregated metrics — the shape of every figure in the
paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.stats import Aggregate, aggregate
from repro.scenarios.builder import run_scenario
from repro.scenarios.config import ScenarioConfig


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis value of a figure, averaged over seeds."""

    x: float
    label: str
    aggregate: Aggregate

    def metric(self, name: str) -> float:
        return self.aggregate.means[name]


def sweep(
    make_config: Callable[[float, int], ScenarioConfig],
    xs: Sequence[float],
    seeds: Sequence[int],
    label: Callable[[float], str] = lambda x: f"{x:g}",
) -> List[SweepPoint]:
    """Run ``make_config(x, seed)`` for every (x, seed) pair.

    Seeds vary the mobility scenario while the traffic pattern stays tied
    to the seed stream, mirroring the paper's "identical traffic models,
    different randomly generated mobility scenarios".
    """
    points: List[SweepPoint] = []
    for x in xs:
        results = [run_scenario(make_config(x, seed)) for seed in seeds]
        points.append(SweepPoint(x=x, label=label(x), aggregate=aggregate(results)))
    return points


def compare_variants(
    variants: Dict[str, Callable[[int], ScenarioConfig]],
    seeds: Sequence[int],
) -> Dict[str, Aggregate]:
    """Run several protocol variants over the same seeds (one table row
    each), e.g. the paper's Table 3."""
    output: Dict[str, Aggregate] = {}
    for name, make_config in variants.items():
        results = [run_scenario(make_config(seed)) for seed in seeds]
        output[name] = aggregate(results)
    return output

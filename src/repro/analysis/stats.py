"""Statistics over repeated runs.

The paper averages five runs with identical traffic but different random
mobility scenarios per data point; these helpers do the same bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.metrics.collector import SimulationResult

# Two-sided 95% t-distribution critical values by degrees of freedom.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262}


def mean_confidence_interval(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95% confidence half-width of ``values``."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _T95.get(n - 1, 1.96)
    return mean, t * math.sqrt(variance / n)


def welch_t_statistic(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Welch's t statistic and degrees of freedom for two samples.

    Used to judge whether a protocol-variant difference exceeds seed noise.
    Returns ``(0.0, 0.0)`` when either sample has fewer than two values or
    both variances are zero.
    """
    na, nb = len(a), len(b)
    if na < 2 or nb < 2:
        return 0.0, 0.0
    mean_a = sum(a) / na
    mean_b = sum(b) / nb
    var_a = sum((x - mean_a) ** 2 for x in a) / (na - 1)
    var_b = sum((x - mean_b) ** 2 for x in b) / (nb - 1)
    pooled = var_a / na + var_b / nb
    if pooled == 0:
        return 0.0, 0.0
    t = (mean_a - mean_b) / math.sqrt(pooled)
    dof = pooled**2 / (
        (var_a / na) ** 2 / (na - 1) + (var_b / nb) ** 2 / (nb - 1)
    )
    return t, dof


def significantly_different(
    a: Sequence[float], b: Sequence[float], t_threshold: float = 2.776
) -> bool:
    """Rough significance check (default threshold ~ t(0.975, df=4))."""
    t, dof = welch_t_statistic(a, b)
    return dof > 0 and abs(t) > t_threshold


@dataclass(frozen=True)
class Aggregate:
    """Per-metric mean and confidence half-width over a set of runs."""

    means: Dict[str, float]
    half_widths: Dict[str, float]
    runs: int

    def __getitem__(self, metric: str) -> float:
        return self.means[metric]


def aggregate(results: Sequence[SimulationResult]) -> Aggregate:
    """Average the derived metrics of several runs."""
    if not results:
        raise ValueError("no results to aggregate")
    dicts: List[Dict[str, float]] = [result.to_dict() for result in results]
    metrics = dicts[0].keys()
    means: Dict[str, float] = {}
    half_widths: Dict[str, float] = {}
    for metric in metrics:
        values = [d[metric] for d in dicts if math.isfinite(d[metric])]
        if not values:
            means[metric], half_widths[metric] = float("inf"), 0.0
            continue
        means[metric], half_widths[metric] = mean_confidence_interval(values)
    return Aggregate(means=means, half_widths=half_widths, runs=len(results))

"""Aggregation and presentation of simulation results: multi-seed averaging
with confidence intervals, and ASCII renderings of the paper's tables and
figure series."""

from repro.analysis.stats import Aggregate, aggregate, mean_confidence_interval
from repro.analysis.series import SweepPoint, compare_variants, sweep
from repro.analysis.tables import format_table, format_series
from repro.analysis.plot import render_chart, render_sweep
from repro.analysis.export import result_to_json, sweep_to_csv, table_to_csv
from repro.analysis.cache import CacheStats, ResultCache, scenario_hash
from repro.analysis.runner import (
    ProgressUpdate,
    RunReport,
    SweepEngine,
    SweepExecutionError,
    parallel_sweep,
    run_many,
)
from repro.analysis.compare import Comparison, compare, compare_results
from repro.analysis.netmap import render_topology
from repro.analysis.topology import (
    average_degree,
    average_path_length,
    link_lifetimes,
    partition_fraction,
)

__all__ = [
    "Aggregate",
    "aggregate",
    "mean_confidence_interval",
    "SweepPoint",
    "sweep",
    "compare_variants",
    "format_table",
    "format_series",
    "render_chart",
    "render_sweep",
    "result_to_json",
    "sweep_to_csv",
    "table_to_csv",
    "run_many",
    "parallel_sweep",
    "CacheStats",
    "ResultCache",
    "scenario_hash",
    "SweepEngine",
    "SweepExecutionError",
    "RunReport",
    "ProgressUpdate",
    "compare",
    "compare_results",
    "Comparison",
    "render_topology",
    "link_lifetimes",
    "average_degree",
    "average_path_length",
    "partition_fraction",
]

"""Persist experiment results as CSV/JSON.

Benchmarks print tables for humans; these helpers write the same data to
files so figures can be re-plotted elsewhere without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.analysis.series import SweepPoint
from repro.analysis.stats import Aggregate
from repro.metrics.collector import SimulationResult

PathLike = Union[str, Path]


def result_to_json(result: SimulationResult, path: PathLike) -> Path:
    """Write a single run's full counters + derived metrics as JSON."""
    path = Path(path)
    payload = {
        "derived": result.to_dict(),
        "counters": {
            "duration": result.duration,
            "data_sent": result.data_sent,
            "data_received": result.data_received,
            "duplicate_deliveries": result.duplicate_deliveries,
            "mac_control_tx": result.mac_control_tx,
            "routing_tx": result.routing_tx,
            "data_tx": result.data_tx,
            "mac_failures": result.mac_failures,
            "ifq_drops": result.ifq_drops,
            "rreq_sent": result.rreq_sent,
            "replies_received": result.replies_received,
            "good_replies": result.good_replies,
            "cache_hits": result.cache_hits,
            "invalid_cache_hits": result.invalid_cache_hits,
            "link_breaks": result.link_breaks,
            "salvages": result.salvages,
            "drop_reasons": result.drop_reasons,
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def sweep_to_csv(
    points: Sequence[SweepPoint],
    path: PathLike,
    metrics: Sequence[str] = ("pdf", "delay", "overhead"),
    x_title: str = "x",
) -> Path:
    """One row per x value; mean and 95 % CI half-width per metric."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = [x_title]
        for metric in metrics:
            header += [metric, f"{metric}_ci95"]
        writer.writerow(header)
        for point in points:
            row = [point.label]
            for metric in metrics:
                row += [
                    f"{point.aggregate.means[metric]:.6g}",
                    f"{point.aggregate.half_widths[metric]:.6g}",
                ]
            writer.writerow(row)
    return path


def table_to_csv(
    aggregates: Dict[str, Aggregate],
    path: PathLike,
    metrics: Sequence[str] = ("pdf", "delay", "overhead"),
    row_title: str = "variant",
) -> Path:
    """One row per variant (e.g. the paper's Table 3)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = [row_title]
        for metric in metrics:
            header += [metric, f"{metric}_ci95"]
        writer.writerow(header)
        for name, aggregate in aggregates.items():
            row = [name]
            for metric in metrics:
                row += [
                    f"{aggregate.means[metric]:.6g}",
                    f"{aggregate.half_widths[metric]:.6g}",
                ]
            writer.writerow(row)
    return path

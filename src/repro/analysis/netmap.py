"""ASCII snapshots of the network topology.

Renders node positions (and optionally radio links) at an instant as a
character grid — enough to eyeball a scenario's shape in a terminal or a
test log without plotting dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mobility.base import MobilityModel


def render_topology(
    mobility: MobilityModel,
    t: float,
    width_chars: int = 60,
    height_chars: int = 18,
    rx_range: Optional[float] = None,
    field: Optional[Tuple[float, float]] = None,
) -> str:
    """Draw node positions at time ``t``.

    Nodes are labelled with their id's last character ring (0-9, then
    letters); if ``rx_range`` is given, links are sketched with ``.``
    midpoints between connected pairs.  ``field`` fixes the world extent
    (else the bounding box of the nodes plus margin).
    """
    if width_chars < 10 or height_chars < 5:
        raise ValueError("map too small")
    ids = mobility.node_ids
    positions = {node_id: mobility.position(node_id, t) for node_id in ids}
    if field is not None:
        min_x, min_y = 0.0, 0.0
        max_x, max_y = field
    else:
        xs = [p[0] for p in positions.values()]
        ys = [p[1] for p in positions.values()]
        margin = 10.0
        min_x, max_x = min(xs) - margin, max(xs) + margin
        min_y, max_y = min(ys) - margin, max(ys) + margin
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        cx = int((x - min_x) / span_x * (width_chars - 1))
        cy = int((y - min_y) / span_y * (height_chars - 1))
        return min(max(cx, 0), width_chars - 1), min(max(cy, 0), height_chars - 1)

    grid: List[List[str]] = [[" "] * width_chars for _ in range(height_chars)]

    if rx_range is not None:
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if mobility.distance(a, b, t) <= rx_range:
                    ax, ay = positions[a]
                    bx, by = positions[b]
                    cx, cy = to_cell((ax + bx) / 2, (ay + by) / 2)
                    if grid[cy][cx] == " ":
                        grid[cy][cx] = "."

    labels = "0123456789abcdefghijklmnopqrstuvwxyz"
    for node_id in ids:
        cx, cy = to_cell(*positions[node_id])
        grid[cy][cx] = labels[node_id % len(labels)]

    border = "+" + "-" * width_chars + "+"
    body = [f"|{''.join(row)}|" for row in reversed(grid)]  # y grows upward
    footer = (
        f"t={t:g}s  field x:[{min_x:.0f},{max_x:.0f}] y:[{min_y:.0f},{max_y:.0f}]"
        + (f"  rx={rx_range:g}m" if rx_range is not None else "")
    )
    return "\n".join([border] + body + [border, footer])

"""Content-addressed result cache for sweep execution.

A figure is a grid of deterministic simulations, and most iterations of a
figure re-run points that have not changed.  This module keys every run by
a canonical hash of its complete :class:`ScenarioConfig` and persists the
resulting :class:`SimulationResult` to disk, so re-running a figure only
simulates new or changed points.

Key design:

* the key is ``sha256("v<FORMAT>:" + canonical_json(scenario))`` where the
  canonical encoding is sorted-key compact JSON of the full config
  (:func:`repro.scenarios.io.scenario_canonical_json`) — insensitive to
  dict key order, sensitive to every field of ``ScenarioConfig`` and the
  nested ``DsrConfig`` including the seed;
* ``CACHE_FORMAT_VERSION`` is folded into the hash *and* stored in each
  entry, so bumping it (new result fields, changed simulation semantics)
  orphans the whole store rather than serving stale results;
* entries that fail to load (truncated files, foreign versions, unknown
  fields after a refactor) are invalidated — deleted and recounted as
  misses, never returned.

The store layout is ``<root>/<key[:2]>/<key>.json`` (git-object style
fan-out) and writes go through a temp file + ``os.replace`` so a crashed
worker can never leave a half-written entry that later loads.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_canonical_json

PathLike = Union[str, Path]

#: Bump when the result record or simulation semantics change in a way that
#: makes previously cached results wrong to reuse.
CACHE_FORMAT_VERSION = 1


def scenario_hash(config: Union[ScenarioConfig, Dict[str, Any]]) -> str:
    """Content hash identifying one simulation run (config + format version).

    Accepts either a :class:`ScenarioConfig` or its
    :func:`~repro.scenarios.io.scenario_to_dict` payload; both produce the
    same key.
    """
    canonical = scenario_canonical_json(config)
    material = f"v{CACHE_FORMAT_VERSION}:{canonical}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """A plain-JSON-types dict capturing the full result record."""
    return dataclasses.asdict(result)


def result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_payload` (unknown keys are rejected by
    the dataclass constructor, which is exactly what invalidation wants)."""
    return SimulationResult(**payload)


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ResultCache:
    """On-disk content-addressed store of :class:`SimulationResult` records."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` (counted as a miss).

        Unreadable or foreign-version entries are deleted and counted under
        ``stats.invalidated`` in addition to the miss.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            if entry.get("format_version") != CACHE_FORMAT_VERSION:
                raise ValueError(f"format version {entry.get('format_version')}")
            result = result_from_payload(entry["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic: temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format_version": CACHE_FORMAT_VERSION,
            "scenario_hash": key,
            "result": result_to_payload(result),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

"""Content-addressed result cache for sweep execution.

A figure is a grid of deterministic simulations, and most iterations of a
figure re-run points that have not changed.  This module keys every run by
a canonical hash of its complete :class:`ScenarioConfig` and persists the
resulting :class:`SimulationResult` to disk, so re-running a figure only
simulates new or changed points.

Key design:

* the key is ``sha256("v<FORMAT>:" + canonical_json(scenario))`` where the
  canonical encoding is sorted-key compact JSON of the full config
  (:func:`repro.scenarios.io.scenario_canonical_json`) — insensitive to
  dict key order, sensitive to every field of ``ScenarioConfig`` and the
  nested ``DsrConfig`` including the seed;
* ``CACHE_FORMAT_VERSION`` is folded into the hash *and* stored in each
  entry, so bumping it (new result fields, changed simulation semantics)
  orphans the whole store rather than serving stale results;
* entries that fail to load (truncated files, foreign versions, unknown
  fields after a refactor) are invalidated — deleted and recounted as
  misses, never returned.

The store layout is ``<root>/<key[:2]>/<key>.json`` (git-object style
fan-out) and writes go through a temp file + ``os.replace`` so a crashed
worker can never leave a half-written entry that later loads.

The store is garbage-collected rather than unbounded: :meth:`ResultCache.prune`
evicts least-recently-used entries past a byte budget and/or an age limit.
``get()`` refreshes an entry's mtime *before* reading it, and ``prune()``
re-checks each candidate's mtime immediately before unlinking, so an entry
that is being read concurrently is never LRU-evicted mid-fetch.

A cache can also have a *remote tier* (:class:`TieredResultCache` over
:class:`HTTPCacheTier`): entries are fetched from and written through to a
coordinator's ``/v1/cache/<key>`` endpoint, so a result computed by any
worker in a fleet is a hit for every other worker.  Remote failures are
soft — a flaky coordinator degrades a worker to local-only, never breaks it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.devtools.lockdep import OrderedLock, blocking
from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_canonical_json

PathLike = Union[str, Path]

#: Bump when the result record or simulation semantics change in a way that
#: makes previously cached results wrong to reuse.
CACHE_FORMAT_VERSION = 1

#: A temp file must be at least this old before :meth:`ResultCache.prune`
#: sweeps it: a live writer holds its temp file for milliseconds, so only
#: crashed-writer leftovers ever reach this age.
TMP_SWEEP_AGE_S = 300.0


def scenario_hash(config: Union[ScenarioConfig, Dict[str, Any]]) -> str:
    """Content hash identifying one simulation run (config + format version).

    Accepts either a :class:`ScenarioConfig` or its
    :func:`~repro.scenarios.io.scenario_to_dict` payload; both produce the
    same key.
    """
    canonical = scenario_canonical_json(config)
    material = f"v{CACHE_FORMAT_VERSION}:{canonical}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """A plain-JSON-types dict capturing the full result record."""
    return dataclasses.asdict(result)


def result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_payload` (unknown keys are rejected by
    the dataclass constructor, which is exactly what invalidation wants)."""
    return SimulationResult(**payload)


def make_entry(key: str, result: SimulationResult) -> Dict[str, Any]:
    """The on-disk/over-the-wire cache document for one result."""
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "scenario_hash": key,
        "result": result_to_payload(result),
    }


def validate_entry(key: str, entry: Any) -> Dict[str, Any]:
    """Check a cache document against the current format; returns it.

    Raises :class:`ValueError` on anything a conforming store must not
    serve: wrong format version, a key/hash mismatch (content addressing
    is the integrity model), or a result payload that no longer rebuilds.
    """
    if not isinstance(entry, dict):
        raise ValueError(f"cache entry for {key[:12]}… is not an object")
    if entry.get("format_version") != CACHE_FORMAT_VERSION:
        raise ValueError(
            f"cache entry format version {entry.get('format_version')!r} "
            f"!= {CACHE_FORMAT_VERSION}"
        )
    if entry.get("scenario_hash") != key:
        raise ValueError(
            f"cache entry hash {str(entry.get('scenario_hash'))[:12]}… "
            f"does not match key {key[:12]}…"
        )
    try:
        result_from_payload(dict(entry.get("result") or {}))
    except Exception as exc:
        raise ValueError(f"cache entry result does not rebuild: {exc}") from exc
    return entry


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one :class:`ResultCache`.

    The counters are bumped from every thread that touches the cache
    (pool workers, HTTP handlers, the shard board), so increments go
    through the ``record_*`` methods, serialised by a dedicated leaf
    lock; plain attribute reads stay cheap for tests and reporting.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    def __post_init__(self) -> None:
        # Rank 50: a leaf in practice — held only for the increment.
        self._lock = OrderedLock("cache.stats", rank=50, reentrant=False)

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_store(self) -> None:
        with self._lock:
            self.stores += 1

    def record_invalidated(self) -> None:
        with self._lock:
            self.invalidated += 1

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dataclasses.asdict(self)


#: Distinguishes concurrent writers within one process; combined with the
#: PID it makes every in-flight temp file unique across the whole host.
_tmp_seq = itertools.count()


class ResultCache:
    """On-disk content-addressed store of :class:`SimulationResult` records."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` (counted as a miss).

        Unreadable or foreign-version entries are deleted and counted under
        ``stats.invalidated`` in addition to the miss.
        """
        entry = self.get_entry(key)
        if entry is None:
            return None
        return result_from_payload(entry["result"])

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw stored document for ``key`` (validated), or ``None``.

        This is the remote-tier transport shape: the coordinator's
        ``GET /v1/cache/<key>`` serves exactly this document.  The mtime
        is refreshed *before* the read so a concurrent :meth:`prune` —
        which re-checks mtimes right before unlinking — never evicts an
        entry that is mid-fetch.
        """
        path = self._path(key)
        self._touch(path)
        try:
            entry = validate_entry(key, json.loads(path.read_text()))
        except FileNotFoundError:
            self.stats.record_miss()
            return None
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.record_invalidated()
            self.stats.record_miss()
            return None
        self.stats.record_hit()
        return entry

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh ``path``'s mtime so LRU pruning sees the entry as used."""
        try:
            os.utime(path)
        except OSError:
            pass  # entry may have been pruned/replaced concurrently

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic: temp file + rename)."""
        return self._write_entry(key, make_entry(key, result))

    def put_entry(self, key: str, entry: Dict[str, Any]) -> Path:
        """Store a raw cache document (the remote-tier write path).

        The document is validated first (:func:`validate_entry`) so a
        remote peer can never plant an entry this store would refuse to
        produce itself; raises :class:`ValueError` on a bad document.
        """
        return self._write_entry(key, validate_entry(key, entry))

    def _write_entry(self, key: str, entry: Dict[str, Any]) -> Path:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}.{next(_tmp_seq)}"
        )
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        self.stats.record_store()
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> PruneReport:
        """Evict entries until the store fits ``max_bytes`` and nothing is
        older than ``max_age_s``.

        Age and recency are measured from each entry's mtime, which
        :meth:`get` refreshes on every hit — so the size budget evicts
        least-recently-*used* entries first, and the age limit drops entries
        nobody has read for ``max_age_s`` seconds.  ``now`` defaults to the
        current wall clock; tests pin it for determinism.  Stale temp files
        from crashed writers are removed on every call.
        """
        if now is None:
            now = time.time()  # repro-lint: disable=DET001
        for tmp in self.root.glob("*/*.tmp.*"):
            # Sweep only *stale* temp files: a concurrent put() is holding
            # its temp file right now, and unlinking it between write and
            # rename would crash that writer.
            try:
                if now - tmp.stat().st_mtime < TMP_SWEEP_AGE_S:
                    continue
            except OSError:
                continue  # renamed or removed by its writer already
            tmp.unlink(missing_ok=True)
        entries: List[Tuple[float, int, Path]] = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted by a concurrent writer/pruner
            entries.append((stat.st_mtime, stat.st_size, path))
        report = PruneReport(scanned=len(entries))
        kept_bytes = sum(size for _, size, _ in entries)

        def evict(mtime: float, size: int, path: Path, why: str) -> None:
            nonlocal kept_bytes
            # Re-check right before unlinking: get() refreshes an entry's
            # mtime *before* reading it, so an mtime newer than the scan
            # means a reader claimed the entry after we judged it LRU —
            # evicting now would yank a result out from under a fetch.
            if not self._unchanged_since(path, mtime):
                report.spared += 1
                return
            path.unlink(missing_ok=True)
            kept_bytes -= size
            report.removed += 1
            report.removed_bytes += size
            if why == "age":
                report.removed_by_age += 1
            else:
                report.removed_by_size += 1

        survivors: List[Tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                evict(mtime, size, path, "age")
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None and kept_bytes > max_bytes:
            survivors.sort()  # oldest mtime first = least recently used
            for mtime, size, path in survivors:
                if kept_bytes <= max_bytes:
                    break
                evict(mtime, size, path, "size")
        report.kept = report.scanned - report.removed
        report.kept_bytes = kept_bytes
        return report

    @staticmethod
    def _unchanged_since(path: Path, mtime: float) -> bool:
        """True when ``path`` still carries the mtime a prune scan saw —
        i.e. no concurrent :meth:`get` refreshed it in the meantime."""
        try:
            return path.stat().st_mtime == mtime
        except OSError:
            return False  # vanished underneath us; nothing left to evict


@dataclass
class PruneReport:
    """What one :meth:`ResultCache.prune` pass scanned, evicted and kept."""

    scanned: int = 0
    removed: int = 0
    removed_bytes: int = 0
    removed_by_age: int = 0
    removed_by_size: int = 0
    kept: int = 0
    kept_bytes: int = 0
    #: Eviction candidates spared because a concurrent ``get()`` refreshed
    #: their mtime between the scan and the unlink (or they vanished).
    spared: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        return (
            f"pruned {self.removed}/{self.scanned} entries "
            f"({self.removed_bytes} B; {self.removed_by_age} by age, "
            f"{self.removed_by_size} by size), kept {self.kept} "
            f"({self.kept_bytes} B)"
        )


# -- remote tier -------------------------------------------------------------


@dataclass
class RemoteCacheStats:
    """Hit/miss/store/error accounting for one remote cache tier.

    Same discipline as :class:`CacheStats`: cross-thread increments go
    through ``record_*`` under a dedicated leaf lock.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def __post_init__(self) -> None:
        # Rank 52: a leaf, distinct from (and orderable after) cache.stats.
        self._lock = OrderedLock("cache.remote", rank=52, reentrant=False)

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_store(self) -> None:
        with self._lock:
            self.stores += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dataclasses.asdict(self)


class HTTPCacheTier:
    """A remote result-cache tier over a coordinator's ``/v1/cache`` API.

    Transport only: entries travel as the same validated JSON documents
    the on-disk store keeps.  Every failure mode is soft — an unreachable
    or misbehaving coordinator turns ``get_entry`` into a miss and
    ``put_entry`` into a no-op (both counted in ``stats``), so a worker
    degrades to its local tier instead of breaking.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.stats = RemoteCacheStats()

    def _url(self, key: str) -> str:
        return f"{self.base_url}/v1/cache/{key}"

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch and validate one entry; ``None`` on miss or any failure."""
        request = urllib.request.Request(self._url(key))
        try:
            with blocking("cache.remote.get"):
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    entry = validate_entry(
                        key, json.loads(response.read().decode("utf-8"))
                    )
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 404:
                self.stats.record_miss()
            else:
                self.stats.record_error()
            return None
        except Exception:
            self.stats.record_error()
            return None
        self.stats.record_hit()
        return entry

    def put_entry(self, key: str, entry: Dict[str, Any]) -> bool:
        """Push one entry; ``False`` (never an exception) on failure."""
        data = json.dumps(entry, sort_keys=True).encode("utf-8")
        request = urllib.request.Request(
            self._url(key),
            data=data,
            headers={"Content-Type": "application/json"},
            method="PUT",
        )
        try:
            with blocking("cache.remote.put"):
                with urllib.request.urlopen(request, timeout=self.timeout):
                    pass
        except Exception:
            self.stats.record_error()
            return False
        self.stats.record_store()
        return True


class TieredResultCache(ResultCache):
    """A local :class:`ResultCache` backed by a remote tier.

    ``get`` resolves local-first; a remote hit is written through to the
    local tier so it is disk-fast next time.  ``put`` lands locally and is
    pushed to the remote tier best-effort.  With every fleet worker's
    remote tier pointing at one coordinator, a scenario computed (or
    cached) anywhere is a hit everywhere — the fleet-wide extension of the
    single-process in-flight dedup.
    """

    def __init__(self, root: PathLike, remote: HTTPCacheTier) -> None:
        super().__init__(root)
        self.remote = remote

    def get(self, key: str) -> Optional[SimulationResult]:
        result = super().get(key)
        if result is not None:
            return result
        entry = self.remote.get_entry(key)
        if entry is None:
            return None
        try:
            self.put_entry(key, entry)  # write through: disk-fast next time
            result = result_from_payload(entry["result"])
        except Exception:
            return None  # tier disagreement is a miss, never a crash
        self.stats.record_hit()
        return result

    def put(self, key: str, result: SimulationResult) -> Path:
        path = super().put(key, result)
        self.remote.put_entry(key, make_entry(key, result))
        return path


_PRUNE_SIZE_UNITS: Dict[str, int] = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
}

_PRUNE_AGE_UNITS: Dict[str, float] = {
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 604800.0,
}

_PRUNE_PART = re.compile(r"^(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>[a-z]+)$")


def parse_prune_spec(spec: str) -> Tuple[Optional[int], Optional[float]]:
    """Parse a ``--cache-prune`` spec into ``(max_bytes, max_age_s)``.

    The spec is comma-separated size and/or age bounds: ``"500MB"``,
    ``"7d"``, ``"1GiB,30d"``.  Size units: B/KB/MB/GB (decimal) and
    KiB/MiB/GiB (binary); age units: s/m/h/d/w.  At least one bound is
    required; each kind may appear at most once.
    """
    max_bytes: Optional[int] = None
    max_age_s: Optional[float] = None
    for raw in spec.split(","):
        part = raw.strip().lower()
        if not part:
            continue
        match = _PRUNE_PART.match(part)
        if match is None:
            raise ValueError(
                f"bad prune bound {raw!r}: expected <number><unit> like 500MB or 7d"
            )
        number = float(match.group("number"))
        unit = match.group("unit")
        if unit in _PRUNE_SIZE_UNITS:
            if max_bytes is not None:
                raise ValueError(f"duplicate size bound in prune spec {spec!r}")
            max_bytes = int(number * _PRUNE_SIZE_UNITS[unit])
        elif unit in _PRUNE_AGE_UNITS:
            if max_age_s is not None:
                raise ValueError(f"duplicate age bound in prune spec {spec!r}")
            max_age_s = number * _PRUNE_AGE_UNITS[unit]
        else:
            raise ValueError(
                f"bad prune unit {unit!r} in {raw!r}: size units are "
                "B/KB/MB/GB/KiB/MiB/GiB, age units are s/m/h/d/w"
            )
    if max_bytes is None and max_age_s is None:
        raise ValueError(f"empty prune spec {spec!r}: give a size and/or age bound")
    return max_bytes, max_age_s

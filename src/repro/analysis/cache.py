"""Content-addressed result cache for sweep execution.

A figure is a grid of deterministic simulations, and most iterations of a
figure re-run points that have not changed.  This module keys every run by
a canonical hash of its complete :class:`ScenarioConfig` and persists the
resulting :class:`SimulationResult` to disk, so re-running a figure only
simulates new or changed points.

Key design:

* the key is ``sha256("v<FORMAT>:" + canonical_json(scenario))`` where the
  canonical encoding is sorted-key compact JSON of the full config
  (:func:`repro.scenarios.io.scenario_canonical_json`) — insensitive to
  dict key order, sensitive to every field of ``ScenarioConfig`` and the
  nested ``DsrConfig`` including the seed;
* ``CACHE_FORMAT_VERSION`` is folded into the hash *and* stored in each
  entry, so bumping it (new result fields, changed simulation semantics)
  orphans the whole store rather than serving stale results;
* entries that fail to load (truncated files, foreign versions, unknown
  fields after a refactor) are invalidated — deleted and recounted as
  misses, never returned.

The store layout is ``<root>/<key[:2]>/<key>.json`` (git-object style
fan-out) and writes go through a temp file + ``os.replace`` so a crashed
worker can never leave a half-written entry that later loads.

The store is garbage-collected rather than unbounded: :meth:`ResultCache.prune`
evicts least-recently-used entries past a byte budget and/or an age limit.
``get()`` refreshes an entry's mtime on every hit, so "recently used" means
recently *read*, not recently written.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_canonical_json

PathLike = Union[str, Path]

#: Bump when the result record or simulation semantics change in a way that
#: makes previously cached results wrong to reuse.
CACHE_FORMAT_VERSION = 1


def scenario_hash(config: Union[ScenarioConfig, Dict[str, Any]]) -> str:
    """Content hash identifying one simulation run (config + format version).

    Accepts either a :class:`ScenarioConfig` or its
    :func:`~repro.scenarios.io.scenario_to_dict` payload; both produce the
    same key.
    """
    canonical = scenario_canonical_json(config)
    material = f"v{CACHE_FORMAT_VERSION}:{canonical}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """A plain-JSON-types dict capturing the full result record."""
    return dataclasses.asdict(result)


def result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_payload` (unknown keys are rejected by
    the dataclass constructor, which is exactly what invalidation wants)."""
    return SimulationResult(**payload)


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


#: Distinguishes concurrent writers within one process; combined with the
#: PID it makes every in-flight temp file unique across the whole host.
_tmp_seq = itertools.count()


class ResultCache:
    """On-disk content-addressed store of :class:`SimulationResult` records."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` (counted as a miss).

        Unreadable or foreign-version entries are deleted and counted under
        ``stats.invalidated`` in addition to the miss.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            if entry.get("format_version") != CACHE_FORMAT_VERSION:
                raise ValueError(f"format version {entry.get('format_version')}")
            result = result_from_payload(entry["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(path)
        return result

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh ``path``'s mtime so LRU pruning sees the entry as used."""
        try:
            os.utime(path)
        except OSError:
            pass  # entry may have been pruned/replaced concurrently

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic: temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format_version": CACHE_FORMAT_VERSION,
            "scenario_hash": key,
            "result": result_to_payload(result),
        }
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}.{next(_tmp_seq)}"
        )
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> PruneReport:
        """Evict entries until the store fits ``max_bytes`` and nothing is
        older than ``max_age_s``.

        Age and recency are measured from each entry's mtime, which
        :meth:`get` refreshes on every hit — so the size budget evicts
        least-recently-*used* entries first, and the age limit drops entries
        nobody has read for ``max_age_s`` seconds.  ``now`` defaults to the
        current wall clock; tests pin it for determinism.  Stale temp files
        from crashed writers are removed on every call.
        """
        if now is None:
            now = time.time()  # repro-lint: disable=DET001
        for tmp in self.root.glob("*/*.tmp.*"):
            tmp.unlink(missing_ok=True)
        entries: List[Tuple[float, int, Path]] = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted by a concurrent writer/pruner
            entries.append((stat.st_mtime, stat.st_size, path))
        report = PruneReport(scanned=len(entries))
        kept_bytes = sum(size for _, size, _ in entries)

        def evict(size: int, path: Path, why: str) -> None:
            nonlocal kept_bytes
            path.unlink(missing_ok=True)
            kept_bytes -= size
            report.removed += 1
            report.removed_bytes += size
            if why == "age":
                report.removed_by_age += 1
            else:
                report.removed_by_size += 1

        survivors: List[Tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                evict(size, path, "age")
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None and kept_bytes > max_bytes:
            survivors.sort()  # oldest mtime first = least recently used
            for _mtime, size, path in survivors:
                if kept_bytes <= max_bytes:
                    break
                evict(size, path, "size")
        report.kept = report.scanned - report.removed
        report.kept_bytes = kept_bytes
        return report


@dataclass
class PruneReport:
    """What one :meth:`ResultCache.prune` pass scanned, evicted and kept."""

    scanned: int = 0
    removed: int = 0
    removed_bytes: int = 0
    removed_by_age: int = 0
    removed_by_size: int = 0
    kept: int = 0
    kept_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        return (
            f"pruned {self.removed}/{self.scanned} entries "
            f"({self.removed_bytes} B; {self.removed_by_age} by age, "
            f"{self.removed_by_size} by size), kept {self.kept} "
            f"({self.kept_bytes} B)"
        )


_PRUNE_SIZE_UNITS: Dict[str, int] = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
}

_PRUNE_AGE_UNITS: Dict[str, float] = {
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 604800.0,
}

_PRUNE_PART = re.compile(r"^(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>[a-z]+)$")


def parse_prune_spec(spec: str) -> Tuple[Optional[int], Optional[float]]:
    """Parse a ``--cache-prune`` spec into ``(max_bytes, max_age_s)``.

    The spec is comma-separated size and/or age bounds: ``"500MB"``,
    ``"7d"``, ``"1GiB,30d"``.  Size units: B/KB/MB/GB (decimal) and
    KiB/MiB/GiB (binary); age units: s/m/h/d/w.  At least one bound is
    required; each kind may appear at most once.
    """
    max_bytes: Optional[int] = None
    max_age_s: Optional[float] = None
    for raw in spec.split(","):
        part = raw.strip().lower()
        if not part:
            continue
        match = _PRUNE_PART.match(part)
        if match is None:
            raise ValueError(
                f"bad prune bound {raw!r}: expected <number><unit> like 500MB or 7d"
            )
        number = float(match.group("number"))
        unit = match.group("unit")
        if unit in _PRUNE_SIZE_UNITS:
            if max_bytes is not None:
                raise ValueError(f"duplicate size bound in prune spec {spec!r}")
            max_bytes = int(number * _PRUNE_SIZE_UNITS[unit])
        elif unit in _PRUNE_AGE_UNITS:
            if max_age_s is not None:
                raise ValueError(f"duplicate age bound in prune spec {spec!r}")
            max_age_s = number * _PRUNE_AGE_UNITS[unit]
        else:
            raise ValueError(
                f"bad prune unit {unit!r} in {raw!r}: size units are "
                "B/KB/MB/GB/KiB/MiB/GiB, age units are s/m/h/d/w"
            )
    if max_bytes is None and max_age_s is None:
        raise ValueError(f"empty prune spec {spec!r}: give a size and/or age bound")
    return max_bytes, max_age_s

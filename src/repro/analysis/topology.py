"""Scenario characterisation: connectivity and link dynamics over time.

The paper's conclusions are parameterised by how fast links churn; these
helpers measure that directly from a mobility model, without running any
protocol:

* :func:`link_lifetimes` — durations of link up-periods (the physical
  quantity the route-expiry timeout must track);
* :func:`average_degree` / :func:`partition_fraction` — density and
  reachability of the scenario;
* :func:`average_path_length` — hop distance between connected pairs.

EXPERIMENTS.md uses these to justify how the scaled scenario's optimal
timeout relates to the paper's (the timeout tracks the link lifetime
scale).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.mobility.base import MobilityModel

Link = Tuple[int, int]


def _adjacency(mobility: MobilityModel, rx_range: float, t: float):
    ids = mobility.node_ids
    positions = np.array([mobility.position(node_id, t) for node_id in ids])
    deltas = positions[:, None, :] - positions[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=2))
    adjacency = distances <= rx_range
    np.fill_diagonal(adjacency, False)
    return ids, adjacency


def link_lifetimes(
    mobility: MobilityModel,
    rx_range: float,
    duration: float,
    step: float = 0.5,
) -> List[float]:
    """Durations of contiguous link up-periods, sampled every ``step`` s.

    Periods still up at ``duration`` are excluded (right-censored data
    would bias the mean upward for short runs).
    """
    ids = mobility.node_ids
    up_since: Dict[Link, float] = {}
    lifetimes: List[float] = []
    times = np.arange(0.0, duration + step / 2, step)
    for t in times:
        _, adjacency = _adjacency(mobility, rx_range, float(t))
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                link = (ids[i], ids[j])
                if adjacency[i, j]:
                    up_since.setdefault(link, float(t))
                elif link in up_since:
                    lifetimes.append(float(t) - up_since.pop(link))
    return lifetimes


def average_degree(mobility: MobilityModel, rx_range: float, t: float) -> float:
    """Mean number of neighbours per node at time ``t``."""
    ids, adjacency = _adjacency(mobility, rx_range, t)
    if not ids:
        return 0.0
    return float(adjacency.sum()) / len(ids)


def partition_fraction(
    mobility: MobilityModel, rx_range: float, t: float
) -> float:
    """Fraction of node pairs with *no* multi-hop path at time ``t``.

    0.0 means fully connected; the paper's scenarios are usually close to
    connected, and high values flag a scenario where delivery failures are
    topological rather than protocol-caused.
    """
    ids, adjacency = _adjacency(mobility, rx_range, t)
    n = len(ids)
    if n < 2:
        return 0.0
    seen = [False] * n
    component_sizes: List[int] = []
    for start in range(n):
        if seen[start]:
            continue
        size = 0
        frontier = deque([start])
        seen[start] = True
        while frontier:
            node = frontier.popleft()
            size += 1
            for neighbor in np.flatnonzero(adjacency[node]):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    frontier.append(int(neighbor))
        component_sizes.append(size)
    connected_pairs = sum(size * (size - 1) // 2 for size in component_sizes)
    total_pairs = n * (n - 1) // 2
    return 1.0 - connected_pairs / total_pairs


def average_path_length(
    mobility: MobilityModel, rx_range: float, t: float
) -> float:
    """Mean hop count over connected node pairs at time ``t`` (BFS)."""
    ids, adjacency = _adjacency(mobility, rx_range, t)
    n = len(ids)
    total = count = 0
    for start in range(n):
        dist = [-1] * n
        dist[start] = 0
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in np.flatnonzero(adjacency[node]):
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    frontier.append(int(neighbor))
        for other in range(start + 1, n):
            if dist[other] > 0:
                total += dist[other]
                count += 1
    return total / count if count else 0.0

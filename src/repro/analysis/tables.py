"""Plain-text rendering of sweep results, in the shape of the paper's
tables and figures (one row per x value / variant, one column per metric)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.series import SweepPoint
from repro.analysis.stats import Aggregate

_DEFAULT_METRICS = ("pdf", "delay", "overhead")

_METRIC_TITLES = {
    "pdf": "delivery fraction",
    "delay": "avg delay (s)",
    "overhead": "normalized overhead",
    "throughput_kbps": "throughput (kb/s)",
    "good_replies_pct": "good replies (%)",
    "invalid_cache_pct": "invalid cached routes (%)",
    "data_sent": "data sent",
    "data_received": "data received",
    "routing_tx": "routing tx",
    "mac_control_tx": "MAC control tx",
    "link_breaks": "link breaks",
}


def _fmt(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return "inf"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_series(
    points: Sequence[SweepPoint],
    metrics: Sequence[str] = _DEFAULT_METRICS,
    x_title: str = "x",
    show_ci: bool = True,
) -> str:
    """A figure as text: rows are x-axis values, columns are metrics."""
    headers = [x_title] + [_METRIC_TITLES.get(m, m) for m in metrics]
    rows: List[List[str]] = []
    for point in points:
        row = [point.label]
        for metric in metrics:
            cell = _fmt(point.aggregate.means[metric])
            if show_ci and point.aggregate.runs > 1:
                cell += f" ±{_fmt(point.aggregate.half_widths[metric])}"
            row.append(cell)
        rows.append(row)
    return _render(headers, rows)


def format_table(
    aggregates: Dict[str, Aggregate],
    metrics: Sequence[str] = _DEFAULT_METRICS,
    row_title: str = "variant",
    show_ci: bool = False,
) -> str:
    """A comparison table: rows are protocol variants."""
    headers = [row_title] + [_METRIC_TITLES.get(m, m) for m in metrics]
    rows: List[List[str]] = []
    for name, agg in aggregates.items():
        row = [name]
        for metric in metrics:
            cell = _fmt(agg.means[metric])
            if show_ci and agg.runs > 1:
                cell += f" ±{_fmt(agg.half_widths[metric])}"
            row.append(cell)
        rows.append(row)
    return _render(headers, rows)


def _render(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    divider = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([line(headers), divider] + [line(row) for row in rows])

"""A/B comparison of protocol variants with significance marking.

Answers the question every results table begs: *is that difference real or
seed noise?*  Runs two variants over the same seeds (paired by scenario),
reports per-metric means, the delta, and a Welch-test verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.stats import mean_confidence_interval, welch_t_statistic
from repro.metrics.collector import SimulationResult
from repro.scenarios.builder import run_scenario
from repro.scenarios.config import ScenarioConfig

_DEFAULT_METRICS = ("pdf", "delay", "overhead", "good_replies_pct", "invalid_cache_pct")


@dataclass(frozen=True)
class MetricComparison:
    metric: str
    mean_a: float
    mean_b: float
    t_statistic: float
    significant: bool

    @property
    def delta(self) -> float:
        return self.mean_b - self.mean_a

    @property
    def relative_delta(self) -> float:
        if self.mean_a == 0:
            return float("inf") if self.mean_b else 0.0
        return self.delta / abs(self.mean_a)


@dataclass(frozen=True)
class Comparison:
    name_a: str
    name_b: str
    seeds: List[int]
    metrics: Dict[str, MetricComparison]

    def format(self) -> str:
        header = (
            f"{'metric':<24} {self.name_a:>12} {self.name_b:>12} "
            f"{'delta':>10} {'signif':>7}"
        )
        lines = [header, "-" * len(header)]
        for comparison in self.metrics.values():
            mark = "yes" if comparison.significant else "-"
            lines.append(
                f"{comparison.metric:<24} {comparison.mean_a:>12.4f} "
                f"{comparison.mean_b:>12.4f} {comparison.delta:>+10.4f} {mark:>7}"
            )
        return "\n".join(lines)


def compare(
    name_a: str,
    make_a: Callable[[int], ScenarioConfig],
    name_b: str,
    make_b: Callable[[int], ScenarioConfig],
    seeds: Sequence[int],
    metrics: Sequence[str] = _DEFAULT_METRICS,
    t_threshold: float = 2.776,
) -> Comparison:
    """Run both variants over ``seeds`` and compare metric by metric.

    The default threshold corresponds to p < 0.05 at ~4 degrees of freedom
    (five seeds, the paper's count); fewer seeds make significance
    unattainable, which is the honest answer.
    """
    results_a = [run_scenario(make_a(seed)) for seed in seeds]
    results_b = [run_scenario(make_b(seed)) for seed in seeds]
    return compare_results(name_a, results_a, name_b, results_b, seeds, metrics, t_threshold)


def compare_results(
    name_a: str,
    results_a: Sequence[SimulationResult],
    name_b: str,
    results_b: Sequence[SimulationResult],
    seeds: Sequence[int],
    metrics: Sequence[str] = _DEFAULT_METRICS,
    t_threshold: float = 2.776,
) -> Comparison:
    """Like :func:`compare` but over already-computed results."""
    table: Dict[str, MetricComparison] = {}
    for metric in metrics:
        values_a = [result.to_dict()[metric] for result in results_a]
        values_b = [result.to_dict()[metric] for result in results_b]
        finite_a = [v for v in values_a if v == v and abs(v) != float("inf")]
        finite_b = [v for v in values_b if v == v and abs(v) != float("inf")]
        mean_a, _ = mean_confidence_interval(finite_a)
        mean_b, _ = mean_confidence_interval(finite_b)
        t, dof = welch_t_statistic(finite_a, finite_b)
        table[metric] = MetricComparison(
            metric=metric,
            mean_a=mean_a,
            mean_b=mean_b,
            t_statistic=t,
            significant=dof > 0 and abs(t) > t_threshold,
        )
    return Comparison(name_a=name_a, name_b=name_b, seeds=list(seeds), metrics=table)

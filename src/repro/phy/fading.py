"""Probabilistic frame loss near the cell edge.

The disk model makes reception binary at exactly ``rx_range``; real radios
(and ns-2 runs with shadowing enabled) see a *grey zone* where frames are
lost with increasing probability.  :class:`EdgeLossModel` reproduces that:
reception is certain inside ``reliable_fraction * rx_range`` and decays
linearly (by default) to zero at ``rx_range``.

This matters to the paper's topic because grey-zone losses trigger MAC retry
exhaustion on links that are *sometimes* usable — the noisiest possible
input for route caches — so the robustness benchmarks run the caching
strategies with fading enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class LossModel:
    """Interface: decides whether an in-range frame is received."""

    def delivered(self, distance: float, rng: np.random.Generator) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class NoLoss(LossModel):
    """The pure disk model: everything in range is delivered."""

    def delivered(self, distance: float, rng: np.random.Generator) -> bool:
        return True


@dataclass(frozen=True)
class EdgeLossModel(LossModel):
    """Linear loss ramp between the reliable zone and the cell edge.

    Attributes
    ----------
    rx_range:
        The disk radius used by the channel (must match the propagation
        model's receive range).
    reliable_fraction:
        Fraction of the range with guaranteed delivery (default 0.8, i.e.
        the last 20 % of the cell is the grey zone).
    edge_delivery_probability:
        Delivery probability exactly at ``rx_range`` (default 0).
    """

    rx_range: float = 250.0
    reliable_fraction: float = 0.8
    edge_delivery_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.rx_range <= 0:
            raise ConfigurationError("rx_range must be positive")
        if not 0.0 <= self.reliable_fraction <= 1.0:
            raise ConfigurationError("reliable_fraction must be in [0, 1]")
        if not 0.0 <= self.edge_delivery_probability <= 1.0:
            raise ConfigurationError("edge_delivery_probability must be in [0, 1]")

    def delivery_probability(self, distance: float) -> float:
        reliable = self.reliable_fraction * self.rx_range
        if distance <= reliable:
            return 1.0
        if distance >= self.rx_range:
            return self.edge_delivery_probability
        span = self.rx_range - reliable
        fraction = (distance - reliable) / span
        return 1.0 - fraction * (1.0 - self.edge_delivery_probability)

    def delivered(self, distance: float, rng: np.random.Generator) -> bool:
        probability = self.delivery_probability(distance)
        if probability >= 1.0:
            return True
        return bool(rng.random() < probability)

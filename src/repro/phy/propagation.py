"""Propagation models.

The paper's radio is a WaveLAN-like interface with a nominal 250 m range
under the ns-2 two-ray-ground model.  Functionally that model reduces to a
*disk*: reception succeeds within ``rx_range``, and transmissions are sensed
(and interfere) out to a larger ``cs_range`` — ns-2's default carrier-sense
threshold corresponds to roughly 2.2x the receive range.

:func:`two_ray_ground_range` and :func:`log_distance_range` derive that disk
radius from physical radio parameters (transmit power, antenna gains and
heights, receiver sensitivity), so scenarios can be specified in radio terms
instead of a bare range number.  Probabilistic frame loss near the cell edge
is modelled separately by :class:`EdgeLossModel` (see
:mod:`repro.phy.channel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

SPEED_OF_LIGHT = 299_792_458.0


def friis_cross_over_distance(
    frequency_hz: float, tx_height: float = 1.5, rx_height: float = 1.5
) -> float:
    """Distance at which the two-ray model departs from free space.

    Below this distance the two-ray ground model is invalid and Friis free
    space applies (ns-2 uses the same switch).
    """
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 4.0 * math.pi * tx_height * rx_height / wavelength


def two_ray_ground_range(
    tx_power_w: float = 0.2818,
    rx_threshold_w: float = 3.652e-10,
    tx_gain: float = 1.0,
    rx_gain: float = 1.0,
    tx_height: float = 1.5,
    rx_height: float = 1.5,
    frequency_hz: float = 914e6,
) -> float:
    """Receive range under the ns-2 two-ray ground model.

    Defaults are the classic CMU/ns-2 WaveLAN parameters, which yield the
    famous ~250 m nominal range:

    >>> 249.0 < two_ray_ground_range() < 251.0
    True
    """
    if min(tx_power_w, rx_threshold_w, tx_gain, rx_gain) <= 0:
        raise ConfigurationError("radio parameters must be positive")
    # Pr = Pt * Gt * Gr * ht^2 * hr^2 / d^4  (beyond the cross-over point)
    d4 = tx_power_w * tx_gain * rx_gain * tx_height**2 * rx_height**2 / rx_threshold_w
    distance = d4**0.25
    cross_over = friis_cross_over_distance(frequency_hz, tx_height, rx_height)
    if distance < cross_over:
        # Inside the cross-over: fall back to the Friis solution.
        wavelength = SPEED_OF_LIGHT / frequency_hz
        d2 = (
            tx_power_w
            * tx_gain
            * rx_gain
            * wavelength**2
            / ((4.0 * math.pi) ** 2 * rx_threshold_w)
        )
        distance = math.sqrt(d2)
    return distance


def log_distance_range(
    reference_distance: float = 1.0,
    reference_loss_db: float = 31.67,
    path_loss_exponent: float = 2.8,
    tx_power_dbm: float = 24.5,
    rx_sensitivity_dbm: float = -64.4,
) -> float:
    """Receive range under a log-distance path-loss model.

    ``PL(d) = PL(d0) + 10 n log10(d / d0)``; the range is where the received
    power crosses the sensitivity floor.
    """
    if path_loss_exponent <= 0 or reference_distance <= 0:
        raise ConfigurationError("path-loss parameters must be positive")
    budget_db = tx_power_dbm - rx_sensitivity_dbm - reference_loss_db
    return reference_distance * 10.0 ** (budget_db / (10.0 * path_loss_exponent))


@dataclass(frozen=True)
class DiskPropagation:
    """Unit-disk reception with an extended carrier-sense disk.

    Attributes
    ----------
    rx_range:
        Maximum distance (m) at which a frame can be decoded.
    cs_range:
        Maximum distance (m) at which energy is detected; transmissions
        inside this range but outside ``rx_range`` cannot be decoded but do
        cause carrier sense and corrupt concurrent receptions.
    """

    rx_range: float = 250.0
    cs_range: float = 550.0

    def __post_init__(self) -> None:
        if self.rx_range <= 0:
            raise ConfigurationError("rx_range must be positive")
        if self.cs_range < self.rx_range:
            raise ConfigurationError("cs_range must be >= rx_range")

    def can_receive(self, distance: float) -> bool:
        """True if a receiver at ``distance`` metres can decode the frame."""
        return distance <= self.rx_range

    def can_sense(self, distance: float) -> bool:
        """True if a node at ``distance`` metres detects channel energy."""
        return distance <= self.cs_range

"""Radio/physical layer: propagation, the shared channel, and transceivers.

The model reproduces what the paper's results actually depend on:

* a nominal receive range of 250 m (Lucent WaveLAN-like) with a larger
  carrier-sense/interference range,
* a shared 2 Mb/s medium where concurrent in-range transmissions collide
  (no capture), and
* half-duplex transceivers that report medium busy/idle transitions to the
  MAC.

Other radio technologies plug in through :mod:`repro.phy.profiles`: a
:class:`RadioProfile` bundles geometry, bitrate/timing, energy draws, a
probabilistic-reception loss shape and an optional capture threshold; the
default ``wavelan`` profile reproduces the paper's radio bit for bit.

Positions come from a :class:`repro.mobility.MobilityModel`; for speed, pairwise
connectivity is cached per small time quantum by :class:`NeighborCache`
(nodes move at most ~1 m within the default 50 ms quantum, far below the
250 m range, so the approximation is negligible).
"""

from repro.phy.propagation import (
    DiskPropagation,
    log_distance_range,
    two_ray_ground_range,
)
from repro.phy.fading import EdgeLossModel, LossModel, NoLoss
from repro.phy.energy import EnergyLedger, EnergyModel
from repro.phy.neighbors import NeighborCache
from repro.phy.channel import Channel, Transmission
from repro.phy.radio import Radio
from repro.phy.profiles import (
    CaptureModel,
    ProbabilisticReception,
    RadioProfile,
    get_profile,
    profile_names,
)

__all__ = [
    "DiskPropagation",
    "two_ray_ground_range",
    "log_distance_range",
    "LossModel",
    "NoLoss",
    "EdgeLossModel",
    "EnergyModel",
    "EnergyLedger",
    "NeighborCache",
    "Channel",
    "Transmission",
    "Radio",
    "RadioProfile",
    "ProbabilisticReception",
    "CaptureModel",
    "get_profile",
    "profile_names",
]

"""Quantised pairwise-connectivity cache.

Evaluating trajectories and distances for every node pair on every frame
transmission would dominate the simulation's running time.  Instead the
channel asks this cache, which recomputes the full distance matrix (numpy,
O(n^2) but vectorised) at most once per ``quantum`` seconds of simulated
time and memoises receive/carrier-sense neighbour lists.

At the paper's 20 m/s top speed a node moves 1 m per default 50 ms quantum
— 0.4 % of the 250 m radio range — so quantisation error is negligible; the
tests include an exact-versus-cached comparison.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.mobility.base import MobilityModel
from repro.phy.propagation import DiskPropagation


class NeighborCache:
    """Caches per-quantum neighbour sets for all nodes."""

    def __init__(
        self,
        mobility: MobilityModel,
        propagation: DiskPropagation,
        quantum: float = 0.05,
    ):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self._mobility = mobility
        self._propagation = propagation
        self.quantum = quantum
        self._node_ids = mobility.node_ids
        self._index: Dict[int, int] = {
            node_id: i for i, node_id in enumerate(self._node_ids)
        }
        self._tick = -1
        self._positions = np.zeros((len(self._node_ids), 2))
        self._distances = np.zeros((len(self._node_ids), len(self._node_ids)))
        self._rx_neighbors: List[List[int]] = []
        self._cs_neighbors: List[List[int]] = []
        self._components: List[int] | None = None  # lazy, per quantum
        self._components_tick = -1

    def _refresh(self, t: float) -> None:
        tick = int(t / self.quantum)
        if tick == self._tick:
            return
        self._tick = tick
        sample_time = tick * self.quantum
        for i, node_id in enumerate(self._node_ids):
            self._positions[i] = self._mobility.position(node_id, sample_time)
        deltas = self._positions[:, None, :] - self._positions[None, :, :]
        self._distances = np.sqrt((deltas**2).sum(axis=2))
        rx = self._distances <= self._propagation.rx_range
        cs = self._distances <= self._propagation.cs_range
        np.fill_diagonal(rx, False)
        np.fill_diagonal(cs, False)
        ids = self._node_ids
        self._rx_neighbors = [
            [ids[j] for j in np.flatnonzero(rx[i])] for i in range(len(ids))
        ]
        self._cs_neighbors = [
            [ids[j] for j in np.flatnonzero(cs[i])] for i in range(len(ids))
        ]

    def rx_neighbors(self, node_id: int, t: float) -> List[int]:
        """Nodes able to decode a transmission from ``node_id`` at time ``t``."""
        self._refresh(t)
        return self._rx_neighbors[self._index[node_id]]

    def cs_neighbors(self, node_id: int, t: float) -> List[int]:
        """Nodes that sense energy from a transmission by ``node_id``."""
        self._refresh(t)
        return self._cs_neighbors[self._index[node_id]]

    def connected(self, a: int, b: int, t: float) -> bool:
        """True if ``a`` and ``b`` are within receive range at time ``t``."""
        if a == b:
            return True
        self._refresh(t)
        return bool(
            self._distances[self._index[a], self._index[b]]
            <= self._propagation.rx_range
        )

    def distance(self, a: int, b: int, t: float) -> float:
        self._refresh(t)
        return float(self._distances[self._index[a], self._index[b]])

    def reachable(self, a: int, b: int, t: float) -> bool:
        """Ground truth: does *any* multi-hop path exist between a and b?

        Used by the reachability-aware delivery metric to separate
        protocol-caused losses from topological partition.  Connected
        components are computed lazily, at most once per quantum.
        """
        if a == b:
            return True
        self._refresh(t)
        if self._components_tick != self._tick:
            self._compute_components()
        return (
            self._components[self._index[a]] == self._components[self._index[b]]
        )

    def _compute_components(self) -> None:
        n = len(self._node_ids)
        labels = [-1] * n
        label = 0
        for start in range(n):
            if labels[start] >= 0:
                continue
            stack = [start]
            labels[start] = label
            while stack:
                node = stack.pop()
                for neighbor_id in self._rx_neighbors[node]:
                    neighbor = self._index[neighbor_id]
                    if labels[neighbor] < 0:
                        labels[neighbor] = label
                        stack.append(neighbor)
            label += 1
        self._components = labels
        self._components_tick = self._tick

    def route_valid(self, route: List[int], t: float) -> bool:
        """Ground-truth check: does every consecutive hop lie in range?

        This is the oracle behind the paper's cache-correctness metrics
        ("% good replies", "% invalid cached routes").
        """
        return all(
            self.connected(a, b, t) for a, b in zip(route, route[1:])
        )

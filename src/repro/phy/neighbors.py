"""Quantised pairwise-connectivity cache.

Evaluating trajectories and distances for every node pair on every frame
transmission would dominate the simulation's running time.  Instead the
channel asks this cache, which recomputes the full *squared*-distance matrix
(numpy, O(n^2) but vectorised) at most once per ``quantum`` seconds of
simulated time and memoises receive/carrier-sense neighbour information.

Three hot-path decisions, all determinism-preserving:

* **Batched positions.**  The per-quantum refresh samples every node through
  :meth:`repro.mobility.base.MobilityModel.positions` — one vectorized call
  instead of a per-node Python loop.
* **Squared distances.**  Range checks compare ``d^2 <= range^2``; the
  ``sqrt`` only happens when a caller asks for an actual metric distance
  (the probabilistic edge-loss model, once per receivable frame).
* **Lazy neighbour lists.**  Python neighbour lists (and the receive *set*
  the channel consults) are built per node on first use within a quantum.
  Most nodes are silent in any 50 ms quantum, so eagerly rebuilding 2 x n
  lists per tick wastes the bulk of the refresh; the boolean masks are kept
  and the lists materialise on demand.

At the paper's 20 m/s top speed a node moves 1 m per default 50 ms quantum
— 0.4 % of the 250 m radio range — so quantisation error is negligible; the
tests include an exact-versus-cached comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.mobility.base import MobilityModel
from repro.phy.propagation import DiskPropagation


class NeighborCache:
    """Caches per-quantum neighbour sets for all nodes."""

    def __init__(
        self,
        mobility: MobilityModel,
        propagation: DiskPropagation,
        quantum: float = 0.05,
    ):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self._mobility = mobility
        self._propagation = propagation
        self.quantum = quantum
        self._node_ids = mobility.node_ids
        self._ids_array = np.array(self._node_ids, dtype=np.intp)
        self._index: Dict[int, int] = {
            node_id: i for i, node_id in enumerate(self._node_ids)
        }
        self._rx_sq = propagation.rx_range**2
        self._cs_sq = propagation.cs_range**2
        self._tick = -1
        n = len(self._node_ids)
        self._positions = np.zeros((n, 2))
        self._sq_distances = np.zeros((n, n))
        self._rx_mask = np.zeros((n, n), dtype=bool)
        self._cs_mask = np.zeros((n, n), dtype=bool)
        # Per-quantum lazy memos, keyed by row index; cleared on refresh.
        self._rx_lists: Dict[int, List[int]] = {}
        self._cs_lists: Dict[int, List[int]] = {}
        self._rx_sets: Dict[int, FrozenSet[int]] = {}
        self._components: Optional[List[int]] = None  # lazy, per quantum
        self._components_tick = -1

    def _refresh(self, t: float) -> None:
        tick = int(t / self.quantum)
        if tick == self._tick:
            return
        self._tick = tick
        sample_time = tick * self.quantum
        positions = self._mobility.positions(sample_time)
        self._positions = positions
        deltas = positions[:, None, :] - positions[None, :, :]
        sq = np.einsum("ijk,ijk->ij", deltas, deltas)
        self._sq_distances = sq
        rx = sq <= self._rx_sq
        cs = sq <= self._cs_sq
        np.fill_diagonal(rx, False)
        np.fill_diagonal(cs, False)
        self._rx_mask = rx
        self._cs_mask = cs
        self._rx_lists.clear()
        self._cs_lists.clear()
        self._rx_sets.clear()

    def tick(self, t: float) -> int:
        """Refresh for time ``t`` and return the quantum index.

        The tick changes exactly when the cached geometry changes, so callers
        holding derived per-sender state (e.g. the channel's delivery plans)
        can use it as a cheap invalidation token.
        """
        self._refresh(t)
        return self._tick

    def rx_neighbors(self, node_id: int, t: float) -> List[int]:
        """Nodes able to decode a transmission from ``node_id`` at time ``t``."""
        self._refresh(t)
        i = self._index[node_id]
        found = self._rx_lists.get(i)
        if found is None:
            found = self._ids_array[self._rx_mask[i]].tolist()
            self._rx_lists[i] = found
        return found

    def cs_neighbors(self, node_id: int, t: float) -> List[int]:
        """Nodes that sense energy from a transmission by ``node_id``."""
        self._refresh(t)
        i = self._index[node_id]
        found = self._cs_lists.get(i)
        if found is None:
            found = self._ids_array[self._cs_mask[i]].tolist()
            self._cs_lists[i] = found
        return found

    def rx_set(self, node_id: int, t: float) -> FrozenSet[int]:
        """:meth:`rx_neighbors` as a memoised frozenset (membership tests).

        The channel asks this once per transmitted frame; without the memo it
        would rebuild the same ``set`` for every frame a node sends within a
        quantum.
        """
        self._refresh(t)
        i = self._index[node_id]
        found = self._rx_sets.get(i)
        if found is None:
            found = frozenset(self.rx_neighbors(node_id, t))
            self._rx_sets[i] = found
        return found

    def connected(self, a: int, b: int, t: float) -> bool:
        """True if ``a`` and ``b`` are within receive range at time ``t``."""
        if a == b:
            return True
        self._refresh(t)
        return bool(
            self._sq_distances[self._index[a], self._index[b]] <= self._rx_sq
        )

    def distance(self, a: int, b: int, t: float) -> float:
        self._refresh(t)
        return float(
            np.sqrt(self._sq_distances[self._index[a], self._index[b]])
        )

    def reachable(self, a: int, b: int, t: float) -> bool:
        """Ground truth: does *any* multi-hop path exist between a and b?

        Used by the reachability-aware delivery metric to separate
        protocol-caused losses from topological partition.  Connected
        components are computed lazily, at most once per quantum.
        """
        if a == b:
            return True
        self._refresh(t)
        if self._components_tick != self._tick:
            self._compute_components()
        return (
            self._components[self._index[a]] == self._components[self._index[b]]
        )

    def _compute_components(self) -> None:
        n = len(self._node_ids)
        rx = self._rx_mask
        labels = [-1] * n
        label = 0
        for start in range(n):
            if labels[start] >= 0:
                continue
            stack = [start]
            labels[start] = label
            while stack:
                node = stack.pop()
                for neighbor in np.flatnonzero(rx[node]):
                    if labels[neighbor] < 0:
                        labels[neighbor] = label
                        stack.append(neighbor)
            label += 1
        self._components = labels
        self._components_tick = self._tick

    def route_valid(self, route: List[int], t: float) -> bool:
        """Ground-truth check: does every consecutive hop lie in range?

        This is the oracle behind the paper's cache-correctness metrics
        ("% good replies", "% invalid cached routes").  One refresh and one
        fancy-indexed comparison — not a :meth:`connected` (and thus
        potentially a refresh) per hop.
        """
        if len(route) < 2:
            return True
        self._refresh(t)
        index = self._index
        rows = [index[n] for n in route]
        return bool(
            (self._sq_distances[rows[:-1], rows[1:]] <= self._rx_sq).all()
        )

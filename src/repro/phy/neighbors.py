"""Quantised pairwise-connectivity cache.

Evaluating trajectories and distances for every node pair on every frame
transmission would dominate the simulation's running time.  Instead the
channel asks this cache, which refreshes its geometry at most once per
``quantum`` seconds of simulated time and memoises receive/carrier-sense
neighbour information.

The geometry itself lives in a pluggable spatial index
(:mod:`repro.phy.spatial`):

* ``allpairs`` — one vectorized O(n^2) squared-distance matrix per quantum.
  Fastest up to a few hundred nodes; what the paper-scale artifacts use.
* ``grid`` — a uniform-grid cell list (cell edge >= carrier-sense range,
  inflated for bucket reuse), so a per-node query touches only the 3x3 cell
  block around it.  Superlinear win at 1000+ nodes.
* ``auto`` (default) — ``grid`` at or above
  :data:`repro.phy.spatial.GRID_AUTO_NODES` nodes, else ``allpairs``.

The backends are decision-equivalent by construction *and by test*: same
neighbour sets in the same (ascending node id) order, same ``d^2 <= range^2``
comparisons from the same IEEE arithmetic — so simulation metrics are
bit-identical whichever index runs underneath (pinned by
``tests/phy/test_spatial_equivalence.py`` and the golden cross-backend test).

Hot-path decisions, all determinism-preserving:

* **Batched positions.**  The per-quantum refresh samples every node through
  :meth:`repro.mobility.base.MobilityModel.positions` — one vectorized call
  instead of a per-node Python loop.
* **Squared distances.**  Range checks compare ``d^2 <= range^2``; the
  ``sqrt`` only happens when a caller asks for an actual metric distance
  (the probabilistic edge-loss model — see :meth:`distances`, which batches
  it to one vectorized call per sender).
* **Lazy neighbour lists.**  Python neighbour lists (and the receive *set*
  the channel consults) are built per node on first use within a quantum.
  Most nodes are silent in any 50 ms quantum, so eagerly rebuilding 2 x n
  lists per tick wastes the bulk of the refresh; the index masks/buckets are
  kept and the lists materialise on demand.

At the paper's 20 m/s top speed a node moves 1 m per default 50 ms quantum
— 0.4 % of the 250 m radio range — so quantisation error is negligible; the
tests include an exact-versus-cached comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.mobility.base import MobilityModel
from repro.phy.propagation import DiskPropagation
from repro.phy.spatial import GRID_AUTO_NODES, AllPairsIndex, UniformGridIndex

INDEX_CHOICES = ("auto", "allpairs", "grid")


class NeighborCache:
    """Caches per-quantum neighbour sets for all nodes."""

    def __init__(
        self,
        mobility: MobilityModel,
        propagation: DiskPropagation,
        quantum: float = 0.05,
        index: str = "auto",
    ):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if index not in INDEX_CHOICES:
            raise ValueError(
                f"unknown neighbor index {index!r} (choose from {INDEX_CHOICES})"
            )
        self._mobility = mobility
        self._propagation = propagation
        self.quantum = quantum
        self._node_ids = mobility.node_ids
        self._ids_array = np.array(self._node_ids, dtype=np.intp)
        self._index: Dict[int, int] = {
            node_id: i for i, node_id in enumerate(self._node_ids)
        }
        self._rx_sq = propagation.rx_range**2
        self._cs_sq = propagation.cs_range**2
        self._tick = -1
        n = len(self._node_ids)
        if index == "auto":
            index = "grid" if n >= GRID_AUTO_NODES else "allpairs"
        #: The resolved backend name: ``"allpairs"`` or ``"grid"``.
        self.index = index
        self._backend: Union[AllPairsIndex, UniformGridIndex]
        if index == "grid":
            self._backend = UniformGridIndex(
                rx_sq=self._rx_sq,
                cs_sq=self._cs_sq,
                reach=propagation.cs_range,
                speed_bound=mobility.speed_bound(),
                rebucket_horizon_s=max(quantum, 1.0),
            )
        else:
            self._backend = AllPairsIndex(n, self._rx_sq, self._cs_sq)
        # Per-quantum lazy memos, keyed by row index; cleared on refresh.
        self._rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._rx_lists: Dict[int, List[int]] = {}
        self._cs_lists: Dict[int, List[int]] = {}
        self._rx_sets: Dict[int, FrozenSet[int]] = {}

    @property
    def propagation(self) -> DiskPropagation:
        """The disk geometry this cache answers queries for."""
        return self._propagation

    def _refresh(self, t: float) -> None:
        tick = int(t / self.quantum)
        if tick == self._tick:
            return
        self._tick = tick
        sample_time = tick * self.quantum
        self._backend.refresh(self._mobility.positions(sample_time), sample_time)
        self._rows.clear()
        self._rx_lists.clear()
        self._cs_lists.clear()
        self._rx_sets.clear()

    def _node_rows(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rx_rows, cs_rows)`` for row ``i``, memoised within a quantum
        (one backend query yields both radii)."""
        found = self._rows.get(i)
        if found is None:
            found = self._backend.neighbor_rows(i)
            self._rows[i] = found
        return found

    def tick(self, t: float) -> int:
        """Refresh for time ``t`` and return the quantum index.

        The tick changes exactly when the cached geometry changes, so callers
        holding derived per-sender state (e.g. the channel's delivery plans)
        can use it as a cheap invalidation token.
        """
        self._refresh(t)
        return self._tick

    def rx_neighbors(self, node_id: int, t: float) -> List[int]:
        """Nodes able to decode a transmission from ``node_id`` at time ``t``."""
        self._refresh(t)
        i = self._index[node_id]
        found = self._rx_lists.get(i)
        if found is None:
            found = self._ids_array[self._node_rows(i)[0]].tolist()
            self._rx_lists[i] = found
        return found

    def cs_neighbors(self, node_id: int, t: float) -> List[int]:
        """Nodes that sense energy from a transmission by ``node_id``."""
        self._refresh(t)
        i = self._index[node_id]
        found = self._cs_lists.get(i)
        if found is None:
            found = self._ids_array[self._node_rows(i)[1]].tolist()
            self._cs_lists[i] = found
        return found

    def rx_set(self, node_id: int, t: float) -> FrozenSet[int]:
        """:meth:`rx_neighbors` as a memoised frozenset (membership tests).

        The channel asks this once per transmitted frame; without the memo it
        would rebuild the same ``set`` for every frame a node sends within a
        quantum.
        """
        self._refresh(t)
        i = self._index[node_id]
        found = self._rx_sets.get(i)
        if found is None:
            found = frozenset(self.rx_neighbors(node_id, t))
            self._rx_sets[i] = found
        return found

    def connected(self, a: int, b: int, t: float) -> bool:
        """True if ``a`` and ``b`` are within receive range at time ``t``."""
        if a == b:
            return True
        self._refresh(t)
        return bool(
            self._backend.sq_dist(self._index[a], self._index[b]) <= self._rx_sq
        )

    def distance(self, a: int, b: int, t: float) -> float:
        self._refresh(t)
        return float(
            np.sqrt(self._backend.sq_dist(self._index[a], self._index[b]))
        )

    def distances(self, a: int, others: Sequence[int], t: float) -> np.ndarray:
        """Metric distances from ``a`` to each node in ``others`` at ``t``.

        One vectorized ``sqrt`` for the whole batch — the lossy channel asks
        this once per sender per quantum instead of once per receiver per
        frame.  Element order follows ``others``; ``np.sqrt`` is correctly
        rounded, so each element is bit-identical to the scalar
        :meth:`distance` result.
        """
        self._refresh(t)
        if not len(others):
            return np.zeros(0)
        i = self._index[a]
        rows = np.array([self._index[o] for o in others], dtype=np.intp)
        return np.sqrt(self._backend.sq_dists(i, rows))

    def reachable(self, a: int, b: int, t: float) -> bool:
        """Ground truth: does *any* multi-hop path exist between a and b?

        Used by the reachability-aware delivery metric to separate
        protocol-caused losses from topological partition.  Connected
        components are computed lazily, at most once per quantum, by
        vectorized min-label propagation (:mod:`repro.phy.spatial`).
        """
        if a == b:
            return True
        self._refresh(t)
        labels = self._backend.component_labels()
        return bool(labels[self._index[a]] == labels[self._index[b]])

    def route_valid(self, route: List[int], t: float) -> bool:
        """Ground-truth check: does every consecutive hop lie in range?

        This is the oracle behind the paper's cache-correctness metrics
        ("% good replies", "% invalid cached routes").  One refresh and one
        vectorized per-hop comparison — not a :meth:`connected` (and thus
        potentially a refresh) per hop.
        """
        if len(route) < 2:
            return True
        self._refresh(t)
        index = self._index
        rows = np.array([index[n] for n in route], dtype=np.intp)
        return bool((self._backend.hop_sq_dists(rows) <= self._rx_sq).all())

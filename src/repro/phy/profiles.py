"""Pluggable radio-technology profiles.

The paper evaluates route caching on exactly one radio: a WaveLAN-like
2 Mb/s interface with a 250 m disk range, where every link break is caused
by *mobility*.  Real deployments run the same protocols over very different
physical layers — short-range high-loss urban links, long-range low-bitrate
LoRa-style links — where link breaks are predominantly *loss*-driven, and
negative caches / adaptive timeouts face a very different input.

A :class:`RadioProfile` bundles everything the simulator derives from the
radio technology:

* geometry — receive and carrier-sense ranges (the propagation disk, and
  therefore the spatial index's grid pitch);
* timing — bitrate, slot, SIFS and PLCP durations (:class:`~repro.mac.timing.
  MacTiming` derives every frame airtime from these instead of hard-coding
  WaveLAN's 2 Mb/s);
* energy — per-state power draws for the :class:`~repro.phy.energy.
  EnergyLedger`;
* reception — a distance-dependent delivery-probability shape
  (:class:`ProbabilisticReception`) and an optional capture threshold
  (:class:`CaptureModel`): with capture, a frame survives a collision when
  its received power beats the strongest interferer by the threshold,
  instead of ns-2's "any overlap corrupts".

Profiles are looked up by name (``ScenarioConfig.radio_profile``); the
``wavelan`` profile is the **back-compat contract**: resolving it yields
exactly the objects the builder constructed before profiles existed, so
every pre-profile golden metric — and every pre-profile cache key, thanks
to the canonical-JSON default elision in :mod:`repro.scenarios.io` — stays
valid bit for bit.

Determinism: probabilistic reception draws exclusively from the explicitly
seeded ``fading`` stream the builder wires into the channel (DET002); the
capture decision is a pure function of geometry and needs no randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.phy.fading import EdgeLossModel, LossModel

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.scenarios.config import ScenarioConfig


@dataclass(frozen=True)
class RadioProfile:
    """One radio technology, as the simulator sees it.

    Attributes
    ----------
    name:
        Registry key (``ScenarioConfig.radio_profile`` value).
    rx_range, cs_range:
        Receive / carrier-sense disk radii in metres.  The spatial index
        derives its grid pitch from ``cs_range``.
    bitrate:
        Payload bit rate in b/s; every frame airtime scales with it.
    slot, sifs, plcp:
        MAC/PHY timing primitives in seconds (DIFS, EIFS and all timeouts
        are derived from these by :class:`~repro.mac.timing.MacTiming`).
    tx_power_w, rx_power_w, idle_power_w:
        Power draws for the energy ledger, in watts.
    reliable_fraction:
        Fraction of ``rx_range`` with distance-certain delivery; the
        remainder is a grey zone where delivery probability decays linearly
        to ``edge_delivery_probability`` at the cell edge.  ``1.0`` means
        the pure disk model.
    edge_delivery_probability:
        Delivery probability exactly at ``rx_range``.
    capture_threshold_db:
        Power margin (dB) by which a frame must beat the strongest
        overlapping transmission to survive the collision; ``None``
        disables capture (ns-2 semantics: any overlap corrupts).
    path_loss_exponent:
        Exponent of the log-distance power proxy the capture comparison
        uses (only power *differences* matter, so no reference loss or
        transmit power enters the comparison).
    """

    name: str
    rx_range: float
    cs_range: float
    bitrate: float
    slot: float = 20e-6
    sifs: float = 10e-6
    plcp: float = 192e-6
    tx_power_w: float = 1.4
    rx_power_w: float = 1.0
    idle_power_w: float = 0.83
    reliable_fraction: float = 1.0
    edge_delivery_probability: float = 0.0
    capture_threshold_db: Optional[float] = None
    path_loss_exponent: float = 2.8

    def __post_init__(self) -> None:
        if self.rx_range <= 0:
            raise ConfigurationError("rx_range must be positive")
        if self.cs_range < self.rx_range:
            raise ConfigurationError("cs_range must be >= rx_range")
        if self.bitrate <= 0:
            raise ConfigurationError("bitrate must be positive")
        if min(self.slot, self.sifs, self.plcp) <= 0:
            raise ConfigurationError("timing durations must be positive")
        if min(self.tx_power_w, self.rx_power_w, self.idle_power_w) < 0:
            raise ConfigurationError("power draws cannot be negative")
        if not 0.0 <= self.reliable_fraction <= 1.0:
            raise ConfigurationError("reliable_fraction must be in [0, 1]")
        if not 0.0 <= self.edge_delivery_probability <= 1.0:
            raise ConfigurationError("edge_delivery_probability must be in [0, 1]")
        if self.capture_threshold_db is not None and self.capture_threshold_db < 0:
            raise ConfigurationError("capture_threshold_db cannot be negative")
        if self.path_loss_exponent <= 0:
            raise ConfigurationError("path_loss_exponent must be positive")

    def capture(self) -> Optional["CaptureModel"]:
        """The profile's capture comparator, or ``None`` (no capture)."""
        if self.capture_threshold_db is None:
            return None
        return CaptureModel(
            threshold_db=self.capture_threshold_db,
            path_loss_exponent=self.path_loss_exponent,
        )


#: The paper's radio, field for field: the classic CMU/ns-2 WaveLAN disk at
#: 2 Mb/s with 802.11 DSSS timing and the Feeney & Nilsson power draws.
#: Resolving this profile must reproduce the pre-profile builder exactly.
WAVELAN = RadioProfile(
    name="wavelan",
    rx_range=250.0,
    cs_range=550.0,
    bitrate=2e6,
)

#: Short-range, high-loss: an 11 Mb/s 2.4 GHz link in a cluttered urban
#: canyon.  Half the cell is grey zone, fades bite hard near the edge, and
#: a 10 dB capture margin lets the near transmitter win collisions.
URBAN = RadioProfile(
    name="urban",
    rx_range=120.0,
    cs_range=264.0,
    bitrate=11e6,
    tx_power_w=1.65,
    rx_power_w=1.4,
    idle_power_w=1.15,
    reliable_fraction=0.5,
    edge_delivery_probability=0.05,
    capture_threshold_db=10.0,
    path_loss_exponent=3.2,
)

#: Long-range, low-bitrate: a LoRa-style link.  Kilometre reach at a few
#: hundred kb/s, a long preamble, milliwatt-class power draws, a wide lossy
#: tail past 70 % of the range, and the classic ~6 dB LoRa capture margin.
LONGHAUL = RadioProfile(
    name="longhaul",
    rx_range=1200.0,
    cs_range=2640.0,
    bitrate=250e3,
    slot=50e-6,
    sifs=28e-6,
    plcp=1e-3,
    tx_power_w=0.4,
    rx_power_w=0.04,
    idle_power_w=0.003,
    reliable_fraction=0.7,
    edge_delivery_probability=0.1,
    capture_threshold_db=6.0,
    path_loss_exponent=2.7,
)

PROFILES: Dict[str, RadioProfile] = {
    profile.name: profile for profile in (WAVELAN, URBAN, LONGHAUL)
}


def profile_names() -> Tuple[str, ...]:
    """Registered profile names, stable order (``wavelan`` first)."""
    return tuple(PROFILES)


def get_profile(name: str) -> RadioProfile:
    if name not in PROFILES:
        raise ConfigurationError(
            f"unknown radio profile {name!r} (choose from {profile_names()})"
        )
    return PROFILES[name]


def resolve_profile(config: "ScenarioConfig") -> RadioProfile:
    """The effective profile for a scenario.

    The default ``wavelan`` profile keeps honouring the legacy scalar
    ``rx_range``/``cs_range`` scenario knobs (they predate profiles, and
    existing scenarios and tests vary them freely).  Named non-default
    profiles are authoritative: their geometry, timing, loss shape and
    energy model describe one concrete technology.
    """
    profile = get_profile(config.radio_profile)
    if config.radio_profile == WAVELAN.name:
        return replace(profile, rx_range=config.rx_range, cs_range=config.cs_range)
    return profile


@dataclass(frozen=True)
class ProbabilisticReception(LossModel):
    """Distance-dependent delivery probability with a flat loss floor.

    The distance shape is the grey-zone ramp of
    :class:`~repro.phy.fading.EdgeLossModel` — certain delivery inside
    ``reliable_fraction * rx_range``, linear decay to
    ``edge_delivery_probability`` at the cell edge — scaled by
    ``base_delivery``, a distance-*independent* factor
    (``1 - ScenarioConfig.link_loss``) that models interference and fading
    uncorrelated with geometry.  ``base_delivery < 1`` makes *every* link
    lossy, so MAC retry exhaustion — and the route-error churn the paper's
    caching strategies must absorb — happens even on short, stable links:
    loss-driven link breaks rather than mobility-driven ones.

    One uniform draw per in-range listener, from the channel's explicitly
    seeded fading stream, in carrier-sense neighbour order (the same draw
    discipline as :class:`EdgeLossModel`, so the two compose predictably).
    """

    rx_range: float
    reliable_fraction: float = 1.0
    edge_delivery_probability: float = 0.0
    base_delivery: float = 1.0

    def __post_init__(self) -> None:
        if self.rx_range <= 0:
            raise ConfigurationError("rx_range must be positive")
        if not 0.0 <= self.reliable_fraction <= 1.0:
            raise ConfigurationError("reliable_fraction must be in [0, 1]")
        if not 0.0 <= self.edge_delivery_probability <= 1.0:
            raise ConfigurationError("edge_delivery_probability must be in [0, 1]")
        if not 0.0 < self.base_delivery <= 1.0:
            raise ConfigurationError("base_delivery must be in (0, 1]")

    def delivery_probability(self, distance: float) -> float:
        reliable = self.reliable_fraction * self.rx_range
        if distance <= reliable:
            return self.base_delivery
        if distance >= self.rx_range:
            return self.base_delivery * self.edge_delivery_probability
        span = self.rx_range - reliable
        fraction = (distance - reliable) / span
        ramp = 1.0 - fraction * (1.0 - self.edge_delivery_probability)
        return self.base_delivery * ramp

    def delivered(self, distance: float, rng: "np.random.Generator") -> bool:
        probability = self.delivery_probability(distance)
        if probability >= 1.0:
            return True
        return bool(rng.random() < probability)


@dataclass(frozen=True)
class CaptureModel:
    """Decides whether a frame survives overlapping energy.

    Received power is proxied by log-distance path loss; since only power
    *differences* enter the comparison, transmit power and reference loss
    cancel and ``power_db`` is simply ``-10 n log10(d)`` (clamped below one
    metre, where the far-field model stops meaning anything).  A reception
    at power ``p`` survives an interferer at power ``q`` iff
    ``p >= q + threshold_db`` — the standard pairwise (strongest-interferer)
    capture approximation used by LoRa simulators.
    """

    threshold_db: float
    path_loss_exponent: float = 2.8

    def power_db(self, distance: float) -> float:
        """Relative received power (dB) of a transmission ``distance`` away."""
        return -10.0 * self.path_loss_exponent * math.log10(max(distance, 1.0))

    def survives(self, power_db: float, interferer_db: float) -> bool:
        """True when a frame at ``power_db`` captures over one interferer."""
        return power_db >= interferer_db + self.threshold_db


def build_loss_model(
    profile: RadioProfile, config: "ScenarioConfig"
) -> Optional[LossModel]:
    """The channel's loss model for ``profile`` under ``config``.

    Composition rules:

    * the scenario's ``grey_zone_fraction`` (legacy knob) overrides the
      profile's own grey zone when set;
    * ``link_loss`` scales everything by ``1 - link_loss``;
    * when the result is exactly the pre-profile behaviour (no base loss,
      zero edge probability) the *legacy* :class:`EdgeLossModel` object is
      returned, so pre-profile scenarios run through identical code and
      stay bit-identical;
    * ``None`` means no loss at all — the channel's fast NoLoss path.
    """
    if config.grey_zone_fraction > 0.0:
        reliable = 1.0 - config.grey_zone_fraction
        edge_probability = 0.0
    else:
        reliable = profile.reliable_fraction
        edge_probability = profile.edge_delivery_probability
    base = 1.0 - config.link_loss
    if base >= 1.0:
        if reliable >= 1.0:
            return None
        if edge_probability == 0.0:
            return EdgeLossModel(
                rx_range=profile.rx_range, reliable_fraction=reliable
            )
        return ProbabilisticReception(
            rx_range=profile.rx_range,
            reliable_fraction=reliable,
            edge_delivery_probability=edge_probability,
        )
    return ProbabilisticReception(
        rx_range=profile.rx_range,
        reliable_fraction=reliable,
        edge_delivery_probability=edge_probability,
        base_delivery=base,
    )

"""Per-node energy accounting.

The paper motivates minimal routing overhead with "limited bandwidth and
battery power"; this ledger quantifies the battery half.  The model follows
the classic WaveLAN measurements (Feeney & Nilsson, INFOCOM 2001): distinct
power draws for transmitting, receiving/overhearing, and idling.  Energy is
charged by airtime:

* the sender is charged ``tx_power`` for the frame duration,
* every node whose radio heard the frame (including carrier-sense-only
  neighbours, which also burn receive power on the real hardware) is
  charged ``rx_power`` for the duration,
* remaining time is idle.

The ledger exposes joules per node and derived figures like energy per
delivered packet — the overhead metric's physical twin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.profiles import RadioProfile


@dataclass(frozen=True)
class EnergyModel:
    """Power draws in watts (defaults: 2 Mb/s WaveLAN measurements)."""

    tx_power: float = 1.4
    rx_power: float = 1.0
    idle_power: float = 0.83

    def __post_init__(self) -> None:
        if min(self.tx_power, self.rx_power, self.idle_power) < 0:
            raise ValueError("power draws cannot be negative")

    @classmethod
    def from_profile(cls, profile: "RadioProfile") -> "EnergyModel":
        """Per-profile power draws (equals the defaults for ``wavelan``)."""
        return cls(
            tx_power=profile.tx_power_w,
            rx_power=profile.rx_power_w,
            idle_power=profile.idle_power_w,
        )


@dataclass
class NodeEnergy:
    tx_time: float = 0.0
    rx_time: float = 0.0

    def joules(self, model: EnergyModel, duration: float) -> float:
        idle_time = max(0.0, duration - self.tx_time - self.rx_time)
        return (
            self.tx_time * model.tx_power
            + self.rx_time * model.rx_power
            + idle_time * model.idle_power
        )


class EnergyLedger:
    """Accumulates radio airtime per node; attach to a Channel."""

    def __init__(self, model: EnergyModel | None = None):
        self.model = model or EnergyModel()
        self._nodes: Dict[int, NodeEnergy] = {}

    def _node(self, node_id: int) -> NodeEnergy:
        entry = self._nodes.get(node_id)
        if entry is None:
            entry = self._nodes[node_id] = NodeEnergy()
        return entry

    def charge_tx(self, node_id: int, duration: float) -> None:
        self._node(node_id).tx_time += duration

    def charge_rx(self, node_id: int, duration: float) -> None:
        self._node(node_id).rx_time += duration

    def tx_time(self, node_id: int) -> float:
        return self._node(node_id).tx_time

    def rx_time(self, node_id: int) -> float:
        return self._node(node_id).rx_time

    def node_joules(self, node_id: int, duration: float) -> float:
        return self._node(node_id).joules(self.model, duration)

    def total_joules(self, duration: float, num_nodes: int | None = None) -> float:
        """Network-wide energy over ``duration`` seconds.

        ``num_nodes`` adds idle-only nodes that never touched the ledger
        (every radio idles even if it never hears a frame).
        """
        known = sum(
            entry.joules(self.model, duration) for entry in self._nodes.values()
        )
        if num_nodes is not None and num_nodes > len(self._nodes):
            known += (num_nodes - len(self._nodes)) * duration * self.model.idle_power
        return known

    def communication_joules(self) -> float:
        """Energy attributable to traffic (tx + rx time only, no idle)."""
        return sum(
            entry.tx_time * self.model.tx_power + entry.rx_time * self.model.rx_power
            for entry in self._nodes.values()
        )

"""The shared wireless medium.

A transmission is broadcast energy: every node within carrier-sense range of
the sender hears it for the frame's duration; nodes within receive range can
decode it *iff* no other transmission (or their own) overlaps the frame at
their location.  There is no capture effect — any overlap corrupts, which
matches the conservative ns-2 configuration used by the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.phy.fading import LossModel, NoLoss
from repro.phy.neighbors import NeighborCache
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame
    from repro.phy.energy import EnergyLedger
    from repro.phy.radio import Radio


class Transmission:
    """One frame in flight on the medium."""

    __slots__ = ("sender", "frame", "start", "end")

    def __init__(self, sender: int, frame: "Frame", start: float, end: float):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transmission {self.frame.kind} from {self.sender} "
            f"[{self.start:.6f}, {self.end:.6f}]>"
        )


class Channel:
    """Connects all radios through the :class:`NeighborCache` geometry."""

    def __init__(
        self,
        sim: Simulator,
        neighbors: NeighborCache,
        tracer: Optional[Tracer] = None,
        loss_model: Optional[LossModel] = None,
        rng: Optional[np.random.Generator] = None,
        energy: Optional["EnergyLedger"] = None,
    ):
        self._sim = sim
        self._neighbors = neighbors
        self._tracer = tracer or Tracer()
        self._radios: Dict[int, "Radio"] = {}
        self._loss_model = loss_model or NoLoss()
        self._lossy = not isinstance(self._loss_model, NoLoss)
        self._rng = rng or np.random.default_rng(0)
        self.energy = energy

    @property
    def neighbors(self) -> NeighborCache:
        return self._neighbors

    def attach(self, radio: "Radio") -> None:
        if radio.node_id in self._radios:
            raise SimulationError(f"radio for node {radio.node_id} already attached")
        self._radios[radio.node_id] = radio

    def radio(self, node_id: int) -> "Radio":
        return self._radios[node_id]

    def transmit(self, sender: "Radio", frame: "Frame", duration: float) -> None:
        """Put ``frame`` on the air for ``duration`` seconds."""
        now = self._sim.now
        tx = Transmission(sender.node_id, frame, now, now + duration)
        self._tracer.emit(
            now,
            "phy.tx",
            sender=sender.node_id,
            frame_kind=frame.kind.value,
            dst=frame.dst,
            duration=duration,
        )
        sender.begin_transmit(tx)
        rx_set = set(self._neighbors.rx_neighbors(sender.node_id, now))
        touched: List["Radio"] = []
        for node_id in self._neighbors.cs_neighbors(sender.node_id, now):
            radio = self._radios.get(node_id)
            if radio is None:
                continue
            receivable = node_id in rx_set
            if receivable and self._lossy:
                distance = self._neighbors.distance(sender.node_id, node_id, now)
                receivable = self._loss_model.delivered(distance, self._rng)
            radio.energy_start(tx, receivable=receivable)
            touched.append(radio)
            if self.energy is not None:
                self.energy.charge_rx(node_id, duration)
        if self.energy is not None:
            self.energy.charge_tx(sender.node_id, duration)
        self._sim.schedule(duration, self._finish, tx, sender, touched)

    def _finish(
        self, tx: Transmission, sender: "Radio", touched: List["Radio"]
    ) -> None:
        # End energy at listeners first so the sender's completion callback
        # observes a consistent medium.
        for radio in touched:
            radio.energy_end(tx)
        sender.end_transmit(tx)

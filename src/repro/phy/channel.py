"""The shared wireless medium.

A transmission is broadcast energy: every node within carrier-sense range of
the sender hears it for the frame's duration; nodes within receive range can
decode it *iff* no other transmission (or their own) overlaps the frame at
their location.  By default there is no capture effect — any overlap
corrupts, which matches the conservative ns-2 configuration used by the
paper.  Radio profiles may opt into capture by passing a
:class:`~repro.phy.profiles.CaptureModel`: the plan then carries a relative
received power per listener and the radio lets the stronger frame survive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.phy.fading import LossModel, NoLoss
from repro.phy.neighbors import NeighborCache
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame
    from repro.phy.energy import EnergyLedger
    from repro.phy.profiles import CaptureModel
    from repro.phy.radio import Radio


class Transmission:
    """One frame in flight on the medium."""

    __slots__ = ("sender", "frame", "start", "end")

    def __init__(self, sender: int, frame: "Frame", start: float, end: float):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transmission {self.frame.kind} from {self.sender} "
            f"[{self.start:.6f}, {self.end:.6f}]>"
        )


class Channel:
    """Connects all radios through the :class:`NeighborCache` geometry."""

    def __init__(
        self,
        sim: Simulator,
        neighbors: NeighborCache,
        tracer: Optional[Tracer] = None,
        loss_model: Optional[LossModel] = None,
        rng: Optional[np.random.Generator] = None,
        energy: Optional["EnergyLedger"] = None,
        capture: Optional["CaptureModel"] = None,
    ):
        self._sim = sim
        self._neighbors = neighbors
        self._tracer = tracer or Tracer()
        self._radios: Dict[int, "Radio"] = {}
        self._loss_model = loss_model or NoLoss()
        self._lossy = not isinstance(self._loss_model, NoLoss)
        self.capture = capture
        if self._lossy and rng is None:
            # A silent fallback generator here would give every scenario the
            # same fading draws regardless of its seed (found by repro-lint
            # DET002): probabilistic loss needs an explicitly seeded stream,
            # e.g. RandomStreams(seed).stream("fading") as the builder wires.
            raise SimulationError(
                "a probabilistic loss model requires an explicit rng "
                "(pass a seeded stream such as RandomStreams(seed).stream('fading'))"
            )
        self._rng = rng
        self.energy = energy
        # Per-quantum delivery plans:
        # sender -> [(radio, in_rx, distance, power_db)].  Geometry is frozen
        # within a neighbour-cache quantum, so the radio lookups, range tests
        # and power proxies for a sender can be done once per quantum instead
        # of once per frame.
        self._plans: Dict[int, List[tuple]] = {}
        self._plans_tick = -1

    @property
    def neighbors(self) -> NeighborCache:
        return self._neighbors

    def attach(self, radio: "Radio") -> None:
        if radio.node_id in self._radios:
            raise SimulationError(f"radio for node {radio.node_id} already attached")
        self._radios[radio.node_id] = radio

    def radio(self, node_id: int) -> "Radio":
        return self._radios[node_id]

    def transmit(self, sender: "Radio", frame: "Frame", duration: float) -> None:
        """Put ``frame`` on the air for ``duration`` seconds."""
        now = self._sim.now
        tx = Transmission(sender.node_id, frame, now, now + duration)
        if self._tracer.wants("phy.tx"):
            self._tracer.emit(
                now,
                "phy.tx",
                sender=sender.node_id,
                frame_kind=frame.kind.value,
                dst=frame.dst,
                duration=duration,
            )
        sender.begin_transmit(tx)
        plan = self._plan_for(sender.node_id, now)
        energy = self.energy
        if self.capture is not None:
            lossy = self._lossy
            loss_model = self._loss_model
            rng = self._rng
            for radio, in_rx, distance, power in plan:
                receivable = in_rx and (
                    not lossy or loss_model.delivered(distance, rng)
                )
                radio.energy_start(tx, receivable, power)
                if energy is not None:
                    energy.charge_rx(radio.node_id, duration)
        elif self._lossy:
            loss_model = self._loss_model
            rng = self._rng
            for radio, in_rx, distance, _power in plan:
                # Short-circuit keeps the RNG draw order identical to the
                # unmemoised loop: one draw per in-range listener, in
                # carrier-sense neighbour order.
                radio.energy_start(tx, in_rx and loss_model.delivered(distance, rng))
                if energy is not None:
                    energy.charge_rx(radio.node_id, duration)
        elif energy is not None:
            for radio, in_rx, _distance, _power in plan:
                radio.energy_start(tx, in_rx)
                energy.charge_rx(radio.node_id, duration)
        else:
            # The common configuration (disk propagation, no energy model):
            # nothing in the loop but the energy_start calls themselves.
            for radio, in_rx, _distance, _power in plan:
                radio.energy_start(tx, in_rx)
        if energy is not None:
            energy.charge_tx(sender.node_id, duration)
        self._sim.schedule(duration, self._finish, tx, sender, plan)

    def _plan_for(self, sender_id: int, now: float) -> List[tuple]:
        """The sender's listeners for the current quantum.

        Each entry is ``(radio, in_rx, distance, power_db)``; ``distance``
        is only computed when a loss or capture model needs it, and
        ``power_db`` only when capture is enabled (carrier-sense-only
        listeners then need it too — their energy is what receptions must
        capture over).  Plan lists are replaced (never mutated) on quantum
        change, so an in-flight :meth:`_finish` holding a stale plan still
        sees the listeners its frame actually reached.
        """
        neighbors = self._neighbors
        tick = neighbors.tick(now)
        if tick != self._plans_tick:
            self._plans.clear()
            self._plans_tick = tick
        plan = self._plans.get(sender_id)
        if plan is None:
            rx_set = neighbors.rx_set(sender_id, now)
            cs_list = neighbors.cs_neighbors(sender_id, now)
            radios = self._radios
            capture = self.capture
            distance_of: Dict[int, float] = {}
            if capture is not None:
                values = neighbors.distances(sender_id, list(cs_list), now)
                distance_of = dict(zip(cs_list, values.tolist()))
            elif self._lossy:
                # One vectorized sqrt for every in-range listener, instead of
                # a scalar np.sqrt per receiver (np.sqrt is correctly rounded,
                # so each element is bit-identical to the scalar path).
                rx_listeners = [nid for nid in cs_list if nid in rx_set]
                values = neighbors.distances(sender_id, rx_listeners, now)
                distance_of = dict(zip(rx_listeners, values.tolist()))
            plan = []
            for node_id in cs_list:
                radio = radios.get(node_id)
                if radio is None:
                    continue
                in_rx = node_id in rx_set
                distance = distance_of.get(node_id, 0.0)
                power = 0.0 if capture is None else capture.power_db(distance)
                plan.append((radio, in_rx, distance, power))
            self._plans[sender_id] = plan
        return plan

    def _finish(self, tx: Transmission, sender: "Radio", plan: List[tuple]) -> None:
        # End energy at listeners first so the sender's completion callback
        # observes a consistent medium.
        for entry in plan:
            entry[0].energy_end(tx)
        sender.end_transmit(tx)

"""Per-node half-duplex transceiver.

The radio tracks the set of transmissions it currently hears and decides,
per transmission, whether the frame survives: decodable means the frame was
in receive range, no other heard transmission overlapped any part of it, and
this radio was not itself transmitting at any point during it.

The MAC attaches via three callbacks:

* ``on_medium_change()`` — physical carrier-sense transitions,
* ``on_frame(frame)`` — a successfully decoded frame,
* ``on_tx_complete(frame)`` — the radio finished sending our own frame.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import SimulationError
from repro.phy.channel import Channel, Transmission

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame


class _Reception:
    __slots__ = ("receivable", "corrupt")

    def __init__(self, receivable: bool, corrupt: bool):
        self.receivable = receivable
        self.corrupt = corrupt


class Radio:
    """A node's interface to the shared channel."""

    def __init__(self, node_id: int, channel: Channel):
        self.node_id = node_id
        self._channel = channel
        self.mac = None  # set by the MAC layer during stack wiring
        self._transmitting: Optional[Transmission] = None
        self._receptions: Dict[Transmission, _Reception] = {}
        channel.attach(self)

    # -- state queries -----------------------------------------------------

    @property
    def busy(self) -> bool:
        """Physical carrier sense: energy on the air or transmitting."""
        return self._transmitting is not None or bool(self._receptions)

    @property
    def transmitting(self) -> bool:
        return self._transmitting is not None

    # -- transmit path -----------------------------------------------------

    def transmit(self, frame: "Frame", duration: float) -> None:
        """Hand a frame to the channel (the MAC has already deferred)."""
        if self._transmitting is not None:
            raise SimulationError(
                f"node {self.node_id} started a transmission while already sending"
            )
        self._channel.transmit(self, frame, duration)

    def begin_transmit(self, tx: Transmission) -> None:
        self._transmitting = tx
        # Half duplex: anything we were receiving is lost.
        for reception in self._receptions.values():
            reception.corrupt = True
        if self.mac is not None:
            self.mac.on_medium_change()

    def end_transmit(self, tx: Transmission) -> None:
        self._transmitting = None
        if self.mac is not None:
            self.mac.on_medium_change()
            self.mac.on_tx_complete(tx.frame)

    # -- receive path ------------------------------------------------------

    def energy_start(self, tx: Transmission, receivable: bool) -> None:
        corrupt = bool(self._receptions) or self._transmitting is not None
        if corrupt:
            for reception in self._receptions.values():
                reception.corrupt = True
        was_clear = not self.busy
        self._receptions[tx] = _Reception(receivable, corrupt)
        if was_clear and self.mac is not None:
            self.mac.on_medium_change()

    def energy_end(self, tx: Transmission) -> None:
        reception = self._receptions.pop(tx, None)
        if reception is None:  # pragma: no cover - defensive
            return
        if self.mac is None:
            return
        if reception.receivable and reception.corrupt:
            # A decodable frame was ruined (collision / half duplex): the
            # MAC may apply EIFS deference.
            on_corrupt = getattr(self.mac, "on_corrupt_frame", None)
            if on_corrupt is not None:
                on_corrupt()
        if not self.busy:
            self.mac.on_medium_change()
        if reception.receivable and not reception.corrupt:
            self.mac.on_frame(tx.frame)

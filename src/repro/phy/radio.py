"""Per-node half-duplex transceiver.

The radio tracks the set of transmissions it currently hears and decides,
per transmission, whether the frame survives: decodable means the frame was
in receive range, no other heard transmission overlapped any part of it, and
this radio was not itself transmitting at any point during it.

The MAC attaches via three callbacks:

* ``on_medium_change()`` — physical carrier-sense transitions,
* ``on_frame(frame)`` — a successfully decoded frame,
* ``on_tx_complete(frame)`` — the radio finished sending our own frame.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SimulationError
from repro.phy.channel import Channel, Transmission

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame

# A reception in progress is a mutable [receivable, corrupt] pair.  A bare
# list beats a (slotted) class here: receptions are created and destroyed
# once per heard frame per listener — the hottest allocation site in the
# whole simulator.  Only *decodable* frames get an entry; carrier-sense-only
# energy (out of receive range) is a bare counter, since its corrupt flag
# could never be read.
_RECEIVABLE = 0
_CORRUPT = 1


class Radio:
    """A node's interface to the shared channel."""

    def __init__(self, node_id: int, channel: Channel):
        self.node_id = node_id
        self._channel = channel
        self.mac = None  # set by the MAC layer during stack wiring
        # Maintained by the MAC: True only when it provably ignores medium
        # transitions (no transmit attempt in progress).  The default False
        # means "always notify", which keeps custom/test MACs correct without
        # them knowing the flag exists.  Most energy transitions happen at
        # idle bystanders, so skipping the callback here is a real win.
        self.mac_idle = False
        self._transmitting: Optional[Transmission] = None
        self._receptions: Dict[Transmission, List[bool]] = {}
        self._cs_energy = 0  # in-flight transmissions heard but not decodable
        # Capture (profile opt-in): the threshold the channel's CaptureModel
        # configured, and the relative power of every transmission currently
        # heard.  None keeps the legacy any-overlap-corrupts fast path.
        capture = channel.capture
        self._capture_db: Optional[float] = (
            None if capture is None else capture.threshold_db
        )
        self._heard_power: Dict[Transmission, float] = {}
        channel.attach(self)

    # -- state queries -----------------------------------------------------

    @property
    def busy(self) -> bool:
        """Physical carrier sense: energy on the air or transmitting."""
        return (
            self._transmitting is not None
            or bool(self._receptions)
            or self._cs_energy > 0
        )

    @property
    def transmitting(self) -> bool:
        return self._transmitting is not None

    # -- transmit path -----------------------------------------------------

    def transmit(self, frame: "Frame", duration: float) -> None:
        """Hand a frame to the channel (the MAC has already deferred)."""
        if self._transmitting is not None:
            raise SimulationError(
                f"node {self.node_id} started a transmission while already sending"
            )
        self._channel.transmit(self, frame, duration)

    def begin_transmit(self, tx: Transmission) -> None:
        self._transmitting = tx
        # Half duplex: anything we were receiving is lost.
        for reception in self._receptions.values():
            reception[_CORRUPT] = True
        if self.mac is not None and not self.mac_idle:
            self.mac.on_medium_change()

    def end_transmit(self, tx: Transmission) -> None:
        self._transmitting = None
        if self.mac is not None:
            if not self.mac_idle:
                self.mac.on_medium_change()
            self.mac.on_tx_complete(tx.frame)

    # -- receive path ------------------------------------------------------

    def energy_start(
        self, tx: Transmission, receivable: bool, power: float = 0.0
    ) -> None:
        if self._capture_db is not None:
            self._capture_start(tx, receivable, power)
            return
        # `busy` doubles as the new reception's corrupt flag: energy from a
        # second source corrupts, and its absence means we were clear.
        receptions = self._receptions
        busy = (
            bool(receptions)
            or self._cs_energy > 0
            or self._transmitting is not None
        )
        if busy:
            for reception in receptions.values():
                reception[_CORRUPT] = True
        if receivable:
            receptions[tx] = [True, busy]
        else:
            self._cs_energy += 1
        if not busy and self.mac is not None and not self.mac_idle:
            self.mac.on_medium_change()

    def _capture_start(
        self, tx: Transmission, receivable: bool, power: float
    ) -> None:
        """Reception start under the capture model.

        Pairwise strongest-interferer capture: an overlap no longer corrupts
        unconditionally.  Each decodable frame already on the air survives
        the new arrival iff its power exceeds the new arrival's by the
        threshold; the new arrival starts clean iff we are not transmitting
        and it beats the *strongest* energy currently heard by the threshold.
        Half duplex is unchanged — our own transmission always wins.
        """
        receptions = self._receptions
        heard = self._heard_power
        threshold = self._capture_db
        busy = bool(heard) or self._transmitting is not None
        for rx_tx, reception in receptions.items():
            if heard[rx_tx] < power + threshold:
                reception[_CORRUPT] = True
        if receivable:
            corrupt = self._transmitting is not None or any(
                power < other + threshold for other in heard.values()
            )
            receptions[tx] = [True, corrupt]
        else:
            self._cs_energy += 1
        heard[tx] = power
        if not busy and self.mac is not None and not self.mac_idle:
            self.mac.on_medium_change()

    def energy_end(self, tx: Transmission) -> None:
        if self._capture_db is not None:
            self._heard_power.pop(tx, None)
        reception = self._receptions.pop(tx, None)
        if reception is None:
            # Carrier-sense-only energy: no decode outcome to deliver, just
            # the possible busy -> free transition.
            if self._cs_energy > 0:
                self._cs_energy -= 1
                if (
                    not self.mac_idle
                    and self._cs_energy == 0
                    and not self._receptions
                    and self._transmitting is None
                    and self.mac is not None
                ):
                    self.mac.on_medium_change()
            return
        mac = self.mac
        if mac is None:
            return
        receivable, corrupt = reception
        if receivable and corrupt:
            # A decodable frame was ruined (collision / half duplex): the
            # MAC may apply EIFS deference.
            on_corrupt = getattr(mac, "on_corrupt_frame", None)
            if on_corrupt is not None:
                on_corrupt()
        if (
            not self.mac_idle
            and not self._receptions
            and self._cs_energy == 0
            and self._transmitting is None
        ):
            mac.on_medium_change()
        if receivable and not corrupt:
            mac.on_frame(tx.frame)

"""Spatial-index backends for the per-quantum neighbour refresh.

The neighbour cache needs, once per quantum, the answer to "who is within
``rx_range`` / ``cs_range`` of node *i*?".  Two interchangeable backends
provide it:

* :class:`AllPairsIndex` — the PR 1 approach: one vectorized squared-distance
  matrix per quantum.  O(n^2) work and memory per refresh, unbeatable at the
  paper's 100 nodes, the wall at 1000+.
* :class:`UniformGridIndex` — a cell-list index.  Nodes are bucketed into a
  uniform grid whose cell edge is at least the carrier-sense range, so every
  geometric neighbour of a node lives in the 3x3 block around its cell and a
  per-node query touches O(density) candidates instead of O(n).

Both backends consume the same quantum-sampled ``positions`` array and are
required to produce **bit-identical decisions**: squared distances are
computed with the same IEEE operations (``dx*dx + dy*dy`` in float64, the
contraction order :func:`numpy.einsum` uses), candidate lists are reported in
ascending row order (the order the all-pairs boolean masks imply), and range
tests compare the identical ``d^2 <= range^2`` values.  The equivalence is
pinned by property tests over random and adversarial layouts
(``tests/phy/test_spatial_equivalence.py``).

Incremental updates
-------------------

Trajectories are piecewise linear, so every model exposes a finite speed
bound.  The grid exploits it: buckets are built for positions at bucket time
and reused while every node can have drifted at most ``max_drift`` metres
(``speed_bound * |t - bucket_time|``).  The cell edge is inflated by
``2 * max_drift`` over the carrier-sense range, which keeps the 3x3-block
containment guarantee exact for *current* positions even though the bucket
assignment is stale: a pair within ``reach`` now was within
``reach + 2*max_drift <= cell`` at bucket time, and any pair outside the 3x3
block was separated by more than one cell edge at bucket time.  Range
decisions always use current positions — staleness only ever widens the
candidate set, never the result.  At the paper's 20 m/s and the default
1-second rebucket horizon that is a 40 m slack on a 550 m cell, and a full
rebucket (one argsort) runs once per simulated second instead of once per
50 ms quantum.

Determinism: every structure here is a numpy array ordered by node row or by
numeric cell key — no dict/set iteration can reach callers (repro-lint
DET003 guards the scheduling side).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

#: ``index="auto"`` resolves to the grid backend at or above this node count.
#: Below it the all-pairs matrix is both faster (one einsum beats per-node
#: bucket walks) and what the paper-scale artifacts were recorded with.
GRID_AUTO_NODES = 200


def labels_from_mask(rx: np.ndarray) -> np.ndarray:
    """Connected-component labels from a dense boolean adjacency matrix.

    Vectorized min-label propagation with pointer jumping: each round every
    node adopts the smallest label among itself and its neighbours, then
    compresses one level (``labels[labels]``).  Converges in O(log diameter)
    rounds of O(n^2) vector work — replacing the per-node Python BFS that was
    the last O(n^2)-ish interpreter loop on the ``reachable`` path.

    Labels are the smallest row index in each component; only equality is
    meaningful.
    """
    n = rx.shape[0]
    labels = np.arange(n, dtype=np.intp)
    if n == 0:
        return labels
    sentinel = np.intp(n)
    while True:
        neighbor_min = np.where(rx, labels[None, :], sentinel).min(axis=1)
        new = np.minimum(labels, neighbor_min)
        new = new[new]
        if np.array_equal(new, labels):
            return labels
        labels = new


def labels_from_edges(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Connected-component labels from a (symmetric) edge list.

    Same min-label propagation as :func:`labels_from_mask`, but gathering
    over edge arrays (``numpy.minimum.at``) instead of a dense mask, so the
    grid backend never materialises an n x n matrix.  ``min`` is commutative
    and associative, so the result is independent of edge order.
    """
    labels = np.arange(n, dtype=np.intp)
    if src.size == 0:
        return labels
    while True:
        new = labels.copy()
        np.minimum.at(new, src, labels[dst])
        new = new[new]
        if np.array_equal(new, labels):
            return labels
        labels = new


class AllPairsIndex:
    """Dense squared-distance matrix, refreshed once per quantum."""

    name = "allpairs"

    def __init__(self, n: int, rx_sq: float, cs_sq: float):
        self._rx_sq = rx_sq
        self._cs_sq = cs_sq
        self._sq = np.zeros((n, n))
        self._rx = np.zeros((n, n), dtype=bool)
        self._cs = np.zeros((n, n), dtype=bool)
        self._labels: Optional[np.ndarray] = None

    def refresh(self, positions: np.ndarray, t: float) -> None:
        deltas = positions[:, None, :] - positions[None, :, :]
        sq = np.einsum("ijk,ijk->ij", deltas, deltas)
        self._sq = sq
        rx = sq <= self._rx_sq
        cs = sq <= self._cs_sq
        np.fill_diagonal(rx, False)
        np.fill_diagonal(cs, False)
        self._rx = rx
        self._cs = cs
        self._labels = None

    def neighbor_rows(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rx_rows, cs_rows)`` for one node, ascending row order."""
        return np.flatnonzero(self._rx[row]), np.flatnonzero(self._cs[row])

    def sq_dists(self, row: int, others: np.ndarray) -> np.ndarray:
        return np.asarray(self._sq[row, others])

    def sq_dist(self, row_a: int, row_b: int) -> float:
        return float(self._sq[row_a, row_b])

    def hop_sq_dists(self, rows: np.ndarray) -> np.ndarray:
        return np.asarray(self._sq[rows[:-1], rows[1:]])

    def component_labels(self) -> np.ndarray:
        if self._labels is None:
            self._labels = labels_from_mask(self._rx)
        return self._labels


class UniformGridIndex:
    """Cell-list index: per-node queries over a 3x3 cell block.

    Parameters
    ----------
    rx_sq, cs_sq:
        Squared decision radii (must satisfy ``rx_sq <= cs_sq``).
    reach:
        The largest metric radius any query uses (the carrier-sense range);
        the base cell edge.
    speed_bound:
        Upper bound on any node's speed (m/s), from the piecewise-linear
        trajectories.  Zero means buckets never go stale (static layouts).
    rebucket_horizon_s:
        How long a bucket assignment may be reused.  The cell edge is
        inflated by ``2 * speed_bound * rebucket_horizon_s`` so reuse stays
        exact (see the module docstring).
    """

    name = "grid"

    def __init__(
        self,
        rx_sq: float,
        cs_sq: float,
        reach: float,
        speed_bound: float = 0.0,
        rebucket_horizon_s: float = 1.0,
    ):
        if reach <= 0.0:
            raise ValueError("reach must be positive")
        if speed_bound < 0.0:
            raise ValueError("speed_bound cannot be negative")
        if rebucket_horizon_s <= 0.0:
            raise ValueError("rebucket_horizon_s must be positive")
        self._rx_sq = rx_sq
        self._cs_sq = cs_sq
        self._max_drift = speed_bound * rebucket_horizon_s
        # A hair of relative slack on the cell edge: queries compare the
        # *rounded* squared distance against the decision radius, so a pair
        # that is infinitesimally farther apart than ``reach`` in exact
        # arithmetic can still compare as in range (e.g. coordinates 1.0
        # and -5.6e-134 with reach 1.0: the true gap exceeds 1.0, but the
        # float64 difference rounds to exactly 1.0).  Widening the edge by
        # ~4500 ulps keeps every such pair inside the 3x3 block; bucket
        # occupancy is unchanged for any realistic layout.
        self._cell = (reach + 2.0 * self._max_drift) * (1.0 + 1e-12)
        self._speed_bound = speed_bound
        self._positions = np.zeros((0, 2))
        self._bucket_time = 0.0
        self._have_buckets = False
        # CSR-style buckets: rows sorted by cell key, per-key slice bounds.
        self._order = np.zeros(0, dtype=np.intp)
        self._occupied = np.zeros(0, dtype=np.int64)  # sorted occupied keys
        self._bounds = np.zeros(1, dtype=np.intp)
        self._rel = np.zeros((0, 2), dtype=np.int64)  # per-node cell coords
        self._dims = np.zeros(2, dtype=np.int64)
        self._labels: Optional[np.ndarray] = None

    # -- bucket maintenance ------------------------------------------------

    def refresh(self, positions: np.ndarray, t: float) -> None:
        self._positions = positions
        self._labels = None
        if self._have_buckets:
            drift = self._speed_bound * abs(t - self._bucket_time)
            if drift <= self._max_drift:
                return  # buckets still cover every in-reach pair
        self._rebucket(positions, t)

    def _rebucket(self, positions: np.ndarray, t: float) -> None:
        cells = np.floor(positions / self._cell).astype(np.int64)
        origin = cells.min(axis=0)
        rel = cells - origin
        dims = rel.max(axis=0) + 1
        keys = rel[:, 0] * dims[1] + rel[:, 1]
        order = np.argsort(keys, kind="stable")
        occupied, starts = np.unique(keys[order], return_index=True)
        self._order = order.astype(np.intp)
        self._occupied = occupied
        self._bounds = np.append(starts, order.shape[0]).astype(np.intp)
        self._rel = rel
        self._dims = dims
        self._bucket_time = t
        self._have_buckets = True

    def _bucket(self, key: int) -> np.ndarray:
        """Rows in one cell (ascending: the stable argsort preserves row
        order within a key), empty when the cell is unoccupied."""
        slot = int(np.searchsorted(self._occupied, key))
        if slot == self._occupied.shape[0] or self._occupied[slot] != key:
            return self._order[:0]
        return self._order[self._bounds[slot] : self._bounds[slot + 1]]

    def _block_rows(self, cx: int, cy: int) -> np.ndarray:
        """All rows bucketed in the 3x3 block centred on cell ``(cx, cy)``,
        unsorted (concatenation of per-cell buckets)."""
        dims_x = int(self._dims[0])
        dims_y = int(self._dims[1])
        chunks: List[np.ndarray] = []
        for bx in (cx - 1, cx, cx + 1):
            if bx < 0 or bx >= dims_x:
                continue
            for by in (cy - 1, cy, cy + 1):
                if by < 0 or by >= dims_y:
                    continue
                chunk = self._bucket(bx * dims_y + by)
                if chunk.shape[0]:
                    chunks.append(chunk)
        if not chunks:
            return self._order[:0]
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    # -- queries -----------------------------------------------------------

    def neighbor_rows(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rx_rows, cs_rows)`` for one node, ascending row order."""
        positions = self._positions
        candidates = np.sort(self._block_rows(int(self._rel[row, 0]), int(self._rel[row, 1])))
        candidates = candidates[candidates != row]
        deltas = positions[row] - positions[candidates]
        sq = np.einsum("ij,ij->i", deltas, deltas)
        return candidates[sq <= self._rx_sq], candidates[sq <= self._cs_sq]

    def sq_dists(self, row: int, others: np.ndarray) -> np.ndarray:
        deltas = self._positions[row] - self._positions[others]
        return np.asarray(np.einsum("ij,ij->i", deltas, deltas))

    def sq_dist(self, row_a: int, row_b: int) -> float:
        dx = self._positions[row_a, 0] - self._positions[row_b, 0]
        dy = self._positions[row_a, 1] - self._positions[row_b, 1]
        return float(dx * dx + dy * dy)

    def hop_sq_dists(self, rows: np.ndarray) -> np.ndarray:
        hops = self._positions[rows]
        deltas = hops[:-1] - hops[1:]
        return np.asarray(np.einsum("ij,ij->i", deltas, deltas))

    def component_labels(self) -> np.ndarray:
        if self._labels is None:
            self._labels = self._compute_labels()
        return self._labels

    def _compute_labels(self) -> np.ndarray:
        """Edge list per occupied cell (numeric key order — deterministic),
        then vectorized min-label propagation."""
        positions = self._positions
        n = positions.shape[0]
        src_chunks: List[np.ndarray] = []
        dst_chunks: List[np.ndarray] = []
        for slot in range(self._occupied.shape[0]):
            members = self._order[self._bounds[slot] : self._bounds[slot + 1]]
            anchor = members[0]
            block = self._block_rows(int(self._rel[anchor, 0]), int(self._rel[anchor, 1]))
            deltas = positions[members][:, None, :] - positions[block][None, :, :]
            sq = np.einsum("ijk,ijk->ij", deltas, deltas)
            mask = (sq <= self._rx_sq) & (members[:, None] != block[None, :])
            member_idx, block_idx = np.nonzero(mask)
            if member_idx.shape[0]:
                src_chunks.append(members[member_idx])
                dst_chunks.append(block[block_idx])
        if not src_chunks:
            return np.arange(n, dtype=np.intp)
        return labels_from_edges(
            n, np.concatenate(src_chunks), np.concatenate(dst_chunks)
        )

"""Shim for environments without the ``wheel`` package (offline PEP 660
editable installs need it); lets ``pip install -e . --no-use-pep517`` work."""

from setuptools import setup

setup()

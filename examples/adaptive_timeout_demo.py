#!/usr/bin/env python3
"""How the adaptive timeout heuristic behaves.

Feeds one :class:`~repro.core.expiry.AdaptiveTimeout` policy two workloads:

* *uniform breaks* — a route breaks every ~5 s; the timeout settles near
  alpha x 5 s, tracking the average route lifetime;
* *bursty breaks* — clusters of quick breaks separated by long quiet gaps;
  the second term (time since last break) keeps the timeout growing through
  the quiet periods instead of expiring perfectly good routes.

This reproduces the reasoning in the paper's section 3 for why
``T = max(alpha * avg_lifetime, time_since_last_break)``.

    python examples/adaptive_timeout_demo.py
"""

from repro.core.expiry import AdaptiveTimeout


def run_pattern(name: str, break_times: list[float], lifetime: float) -> None:
    policy = AdaptiveTimeout(alpha=2.0, min_timeout=1.0)
    print(f"== {name} ==")
    print(f"{'time (s)':>9}  {'avg lifetime':>12}  {'timeout T':>9}")
    samples = sorted(set([t + 0.01 for t in break_times] + list(range(0, 61, 5))))
    breaks = iter(sorted(break_times))
    upcoming = next(breaks, None)
    for t in samples:
        while upcoming is not None and upcoming <= t:
            policy.on_route_break(lifetime, now=upcoming)
            policy.on_link_break(now=upcoming)
            upcoming = next(breaks, None)
        timeout = policy.timeout(t)
        avg = policy.average_lifetime
        print(
            f"{t:9.2f}  "
            f"{avg if avg is not None else float('nan'):12.2f}  "
            f"{timeout if timeout is not None else float('nan'):9.2f}"
        )
    print()


def main() -> None:
    # Breaks arrive steadily every 5 s; each broken route lived ~5 s.
    run_pattern("uniform breaks (every 5 s)", [5.0 * k for k in range(1, 12)], 5.0)

    # Two bursts of rapid breaks at t~5 and t~40, quiet in between.
    bursty = [5.0, 5.5, 6.0, 40.0, 40.5, 41.0]
    run_pattern("bursty breaks (clusters at t=5 and t=40)", bursty, 0.5)

    print(
        "Note how, in the bursty pattern, T grows with the quiet gap\n"
        "(second term) instead of staying pinned at alpha * 0.5 s = 1 s —\n"
        "without it, every route cached during the quiet period would be\n"
        "expired almost immediately."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Is the improvement real?  Seed-noise-aware variant comparison.

Runs base DSR and the all-techniques variant over the same batch of seeds
(paired scenarios) and prints each metric with a Welch-test verdict —
the discipline behind every claim in EXPERIMENTS.md.

    python examples/variant_significance.py            # 5 seeds, ~2 min
    python examples/variant_significance.py --seeds 8
"""

import argparse

from repro.analysis.compare import compare
from repro.core.config import DsrConfig
from repro.scenarios.presets import scaled_scenario

DURATION = 60.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5, help="number of seeds")
    args = parser.parse_args()
    seeds = list(range(1, args.seeds + 1))

    print(
        f"Comparing base DSR vs all-techniques over seeds {seeds} "
        f"(30 nodes, pause 0, {DURATION:g} s each)...\n"
    )
    comparison = compare(
        "base",
        lambda seed: scaled_scenario(
            pause_time=0.0, dsr=DsrConfig.base(), seed=seed, duration=DURATION
        ),
        "all-techniques",
        lambda seed: scaled_scenario(
            pause_time=0.0, dsr=DsrConfig.all_techniques(), seed=seed, duration=DURATION
        ),
        seeds=seeds,
    )
    print(comparison.format())
    print(
        "\n'signif' = |Welch t| beyond the ~p<0.05 threshold; with few seeds"
        "\nmost differences are honestly indistinguishable from noise."
    )


if __name__ == "__main__":
    main()

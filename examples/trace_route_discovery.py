#!/usr/bin/env python3
"""Watch DSR work, packet by packet.

Builds a deterministic 5-node chain (each node only reaches its direct
neighbours), starts a single CBR flow end to end, then breaks the chain by
walking one relay away — and prints an annotated timeline of everything the
protocol does: route requests, replies, data forwarding, the link-layer
failure, the route error, and the recovery.

    python examples/trace_route_discovery.py
"""

from repro.core.config import DsrConfig
from repro.metrics.groundtruth import make_validity_oracle
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.net.node import Node
from repro.core.agent import DsrAgent
from repro.mac.timing import MacTiming
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.traffic.cbr import CbrSource


def build_network():
    """A 5-node chain; node 2 (the middle relay) departs at t = 4 s."""
    positions = [(i * 220.0, 0.0) for i in range(5)]
    trajectories = {}
    for node_id, (x, y) in enumerate(positions):
        if node_id == 2:
            trajectories[node_id] = Trajectory(
                [
                    Segment(t0=0.0, x0=x, y0=y, vx=0.0, vy=0.0),
                    Segment(t0=4.0, x0=x, y0=y, vx=0.0, vy=120.0),
                ]
            )
        else:
            trajectories[node_id] = Trajectory.stationary(x, y)
    mobility = MobilityModel(trajectories)

    sim = Simulator()
    tracer = Tracer()
    streams = RandomStreams(3)
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(sim, neighbors, tracer=tracer)
    oracle = make_validity_oracle(sim, neighbors)
    nodes = {}
    for node_id in mobility.node_ids:
        agent = DsrAgent(
            node_id,
            sim,
            config=DsrConfig.base(),
            rng=streams.stream("dsr", str(node_id)),
            tracer=tracer,
            validity_oracle=oracle,
        )
        nodes[node_id] = Node(
            node_id,
            sim,
            channel,
            agent,
            mac_rng=streams.stream("mac", str(node_id)),
            timing=MacTiming(),
            tracer=tracer,
        )
    return sim, tracer, nodes


def main() -> None:
    sim, tracer, nodes = build_network()

    def narrate(record):
        t = f"{record.time * 1000:9.2f} ms"
        f = record.fields
        if record.kind == "dsr.rreq_sent":
            scope = "1-hop probe" if f["ttl"] == 1 else "network flood"
            print(f"{t}  node {f['node']}: ROUTE REQUEST for {f['target']} ({scope})")
        elif record.kind == "dsr.reply_sent":
            origin = "cache" if f["from_cache"] else "target"
            print(
                f"{t}  node {f['node']}: ROUTE REPLY to {f['origin']} "
                f"from {origin}, {f['length']}-node route"
            )
        elif record.kind == "dsr.reply_recv":
            print(f"{t}  node {f['node']}: reply received ({f['length']}-node route)")
        elif record.kind == "app.recv":
            print(f"{t}  node {f['dst']}: DATA {f['uid'] % 1000} delivered from {f['src']}")
        elif record.kind == "dsr.link_break":
            print(f"{t}  node {f['node']}: LINK BREAK detected on {f['link']}")
        elif record.kind == "dsr.rerr_sent":
            mode = "broadcast" if f["wide"] else "unicast"
            print(f"{t}  node {f['node']}: ROUTE ERROR ({mode}) for link {f['link']}")
        elif record.kind == "dsr.salvage":
            print(f"{t}  node {f['node']}: salvaging packet via {f['length']}-node route")
        elif record.kind == "dsr.drop":
            print(f"{t}  node {f['node']}: dropped {f['pkt_kind']} ({f['reason']})")

    for kind in (
        "dsr.rreq_sent",
        "dsr.reply_sent",
        "dsr.reply_recv",
        "app.recv",
        "dsr.link_break",
        "dsr.rerr_sent",
        "dsr.salvage",
        "dsr.drop",
    ):
        tracer.subscribe(kind, narrate)

    print("Chain topology: 0 - 1 - 2 - 3 - 4 (node 2 departs at t = 4 s)\n")
    CbrSource(sim, nodes[0], dst=4, rate=1.0, start=0.1, stop=8.0)
    sim.run(until=12.0)

    print("\nFinal route cache at the source (node 0):")
    for cached in nodes[0].agent.cache.paths():
        print(f"  {list(cached.route)} (entered t={cached.added:.2f}s)")


if __name__ == "__main__":
    main()

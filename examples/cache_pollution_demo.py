#!/usr/bin/env python3
"""The "quick pollution" problem — and how the negative cache stops it.

Reconstructs the exact pathology from the paper's section 3 at packet level:

1. A chain 0-1-2-3 carries a CBR stream; every node caches the route.
2. Node 2 walks away: node 1 detects the break and cleans its cache.
3. But packets already in flight upstream still carry the stale route, so
   the moment node 1 forwards (or overhears) one, the dead link is written
   straight back into its cache — pollution within milliseconds of cleanup.
4. With the negative cache enabled, the broken link is quarantined and the
   re-insertion is refused.

The script runs both configurations on the identical scenario and prints,
for node 1, every cache insertion/removal involving the broken link.

    python examples/cache_pollution_demo.py
"""

from repro.core.config import DsrConfig
from repro.mobility.base import MobilityModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.traffic.cbr import CbrSource

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))
from tests.helpers import build_net_from_mobility  # reuse the test harness


def chain_with_departure():
    positions = [(0.0, 0.0), (220.0, 0.0), (440.0, 0.0), (660.0, 0.0)]
    trajectories = {}
    for node_id, (x, y) in enumerate(positions):
        if node_id == 2:
            trajectories[node_id] = Trajectory(
                [
                    Segment(t0=0.0, x0=x, y0=y, vx=0.0, vy=0.0),
                    Segment(t0=3.0, x0=x, y0=y, vx=0.0, vy=150.0),
                ]
            )
        else:
            trajectories[node_id] = Trajectory.stationary(x, y)
    return MobilityModel(trajectories)


def run(name: str, dsr: DsrConfig) -> None:
    print(f"=== {name} ===")
    net = build_net_from_mobility(chain_with_departure(), dsr=dsr)
    watcher = net.agent(1)
    broken = (1, 2)

    # Wrap the cache's add/remove to narrate what happens to the dead link.
    original_add = watcher.cache.add
    original_remove = watcher.cache.remove_link

    cleaned_once = [False]

    def narrating_add(route, now):
        added = original_add(route, now)
        if added and any((a, b) == broken for a, b in zip(route, route[1:])):
            label = (
                "RE-LEARNED stale link (pollution!)"
                if cleaned_once[0]
                else "cached route over link"
            )
            print(f"  {now * 1000:9.1f} ms  node 1 cache: {label} {broken} via {list(route)}")
        return added

    def narrating_remove(link, now):
        lifetimes = original_remove(link, now)
        if link == broken and lifetimes:
            cleaned_once[0] = True
            print(f"  {now * 1000:9.1f} ms  node 1 cache: cleaned {len(lifetimes)} route(s) with {link}")
        return lifetimes

    watcher.cache.add = narrating_add
    watcher.cache.remove_link = narrating_remove

    CbrSource(net.sim, net.nodes[0], dst=3, rate=20.0, start=0.1, stop=6.0)
    net.sim.run(until=8.0)

    polluted = watcher.cache.contains_link(broken)
    print(f"  final state: node 1 cache {'STILL CONTAINS' if polluted else 'is clean of'} {broken}")
    print()


def main() -> None:
    print("Chain 0-1-2-3 at 20 pkt/s; node 2 departs at t = 3 s.\n")
    run("Base DSR (no negative cache)", DsrConfig.base())
    run("DSR + negative cache", DsrConfig.with_negative_cache())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""DSR versus AODV on the identical scenario.

The paper's conclusion suggests its caching techniques generalise to other
on-demand protocols, naming AODV.  This example runs base DSR, DSR with all
three techniques, and AODV over the same mobility and traffic, and prints
the three routing metrics side by side.

    python examples/aodv_comparison.py
"""

from repro.analysis.tables import format_table
from repro.analysis.series import compare_variants
from repro.core.config import DsrConfig
from repro.scenarios.presets import scaled_scenario


def main() -> None:
    seeds = [1, 2]
    duration = 60.0

    def dsr_variant(dsr):
        return lambda seed: scaled_scenario(
            pause_time=0.0, packet_rate=3.0, dsr=dsr, seed=seed, duration=duration
        )

    def aodv(seed):
        return scaled_scenario(
            pause_time=0.0, packet_rate=3.0, seed=seed, duration=duration
        ).but(protocol="aodv")

    print(f"30 nodes, constant mobility, 8 CBR sessions, {duration:g} s, seeds {seeds}\n")
    rows = compare_variants(
        {
            "DSR (base)": dsr_variant(DsrConfig.base()),
            "DSR (all techniques)": dsr_variant(DsrConfig.all_techniques()),
            "AODV": aodv,
        },
        seeds,
    )
    print(format_table(rows, metrics=("pdf", "delay", "overhead"), row_title="protocol"))
    print(
        "\nAODV's intermediate-node replies are its (indirect) route cache;\n"
        "its sequence numbers already provide the freshness signal the paper\n"
        "wants to add to DSR — compare the overhead columns to see the cost."
    )


if __name__ == "__main__":
    main()

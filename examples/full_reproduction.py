#!/usr/bin/env python3
"""Reproduce the whole paper with one call and write a markdown report.

    python examples/full_reproduction.py                 # quick sanity scale
    python examples/full_reproduction.py --scale scaled  # benchmark scale
    python examples/full_reproduction.py --scale paper   # full scale (hours)
"""

import argparse
import sys

from repro.paper import reproduce


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("quick", "scaled", "paper"), default="quick")
    parser.add_argument("--seeds", default="1,2", help="comma-separated seeds")
    parser.add_argument("--out", default="reproduction_report.md")
    args = parser.parse_args()

    seeds = [int(chunk) for chunk in args.seeds.split(",") if chunk.strip()]
    report = reproduce(
        scale=args.scale,
        seeds=seeds,
        progress=lambda message: print(f"... {message}", file=sys.stderr),
    )
    markdown = report.to_markdown()
    with open(args.out, "w") as handle:
        handle.write(markdown + "\n")
    print(markdown)
    print(f"\n(report written to {args.out})", file=sys.stderr)


if __name__ == "__main__":
    main()

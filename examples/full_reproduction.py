#!/usr/bin/env python3
"""Reproduce the whole paper with one call and write a markdown report.

    python examples/full_reproduction.py                 # quick sanity scale
    python examples/full_reproduction.py --scale scaled  # benchmark scale
    python examples/full_reproduction.py --scale paper   # full scale (hours)
"""

import argparse
import os
import sys

from repro.paper import reproduce


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("quick", "scaled", "paper"), default="quick")
    parser.add_argument("--seeds", default="1,2", help="comma-separated seeds")
    parser.add_argument("--out", default="reproduction_report.md")
    parser.add_argument(
        "--processes",
        type=int,
        default=os.cpu_count(),
        help="worker processes for the sweep engine (1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        help="result cache directory; re-runs only simulate changed points",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate (ignore --cache-dir)",
    )
    args = parser.parse_args()

    seeds = [int(chunk) for chunk in args.seeds.split(",") if chunk.strip()]
    report = reproduce(
        scale=args.scale,
        seeds=seeds,
        progress=lambda message: print(f"... {message}", file=sys.stderr),
        processes=args.processes,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    print(f"... sweep engine: {report.sweep_stats}", file=sys.stderr)
    markdown = report.to_markdown()
    with open(args.out, "w") as handle:
        handle.write(markdown + "\n")
    print(markdown)
    print(f"\n(report written to {args.out})", file=sys.stderr)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""TCP meets stale route caches.

The paper's related work (Holland & Vaidya) found that stale DSR routes are
particularly brutal for TCP: a dead source route stalls the flow, TCP calls
it congestion, and the window collapses.  This example runs greedy Tahoe
flows over the mobile scenario with base DSR and with the paper's three
techniques, printing per-flow goodput and the senders' loss signals.

    python examples/tcp_over_dsr.py
"""

from repro.core.config import DsrConfig
from repro.scenarios.builder import build_simulation
from repro.scenarios.presets import scaled_scenario


def run(name: str, dsr: DsrConfig, seed: int = 2) -> float:
    config = scaled_scenario(
        pause_time=0.0, dsr=dsr, seed=seed, duration=60.0
    ).but(traffic_type="tcp", num_sessions=4)
    handle = build_simulation(config)
    handle.sim.run(until=config.duration)

    print(f"--- {name} ---")
    total = 0
    for source, sink in zip(handle.sources, handle.sinks):
        goodput = sink.goodput_segments * config.payload_bytes * 8 / 1000.0 / config.duration
        total += sink.goodput_segments
        print(
            f"  flow {source.flow}: {goodput:6.1f} kb/s   "
            f"retransmits={source.retransmissions:<4d} timeouts={source.timeouts}"
        )
    aggregate = total * config.payload_bytes * 8 / 1000.0 / config.duration
    print(f"  aggregate goodput: {aggregate:.1f} kb/s\n")
    return aggregate


def main() -> None:
    print("4 greedy TCP (Tahoe) flows, 30 mobile nodes, 60 s, constant motion\n")
    base = run("Base DSR", DsrConfig.base())
    combined = run("DSR + all three techniques", DsrConfig.all_techniques())
    change = (combined / base - 1.0) * 100.0 if base > 0 else float("inf")
    print(f"Goodput change from cache-correctness techniques: {change:+.1f} %")


if __name__ == "__main__":
    main()

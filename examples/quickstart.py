#!/usr/bin/env python3
"""Quickstart: run one small MANET simulation and print the paper's metrics.

Builds a 12-node mobile network with CBR traffic, runs base DSR and the
all-techniques variant on the *identical* mobility/traffic scenario, and
prints the paper's three routing metrics plus the two cache metrics.

    python examples/quickstart.py
"""

from repro import DsrConfig, ScenarioConfig, run_scenario


def show(name: str, result) -> None:
    print(f"--- {name} ---")
    print(f"  packet delivery fraction : {result.packet_delivery_fraction:.3f}")
    print(f"  average delay            : {result.average_delay * 1000:.1f} ms")
    print(f"  normalized overhead      : {result.normalized_overhead:.2f}")
    print(f"  good replies             : {result.pct_good_replies:.1f} %")
    print(f"  invalid cached routes    : {result.pct_invalid_cache_hits:.1f} %")
    print()


def main() -> None:
    scenario = ScenarioConfig(
        num_nodes=12,
        field_width=600.0,
        field_height=300.0,
        duration=60.0,
        num_sessions=4,
        packet_rate=3.0,
        pause_time=0.0,  # constant mobility: the paper's hardest setting
        seed=7,
    )

    print(
        f"Simulating {scenario.num_nodes} nodes for {scenario.duration:g} s "
        f"({scenario.num_sessions} CBR sessions at {scenario.packet_rate:g} pkt/s)...\n"
    )

    base = run_scenario(scenario.but(dsr=DsrConfig.base()))
    show("Base DSR", base)

    combined = run_scenario(scenario.but(dsr=DsrConfig.all_techniques()))
    show("DSR + wider errors + adaptive expiry + negative cache", combined)

    gain = combined.packet_delivery_fraction - base.packet_delivery_fraction
    print(f"Delivery improvement from the three techniques: {gain * 100:+.1f} points")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A miniature of the paper's Figure 2: performance versus mobility.

Sweeps the random-waypoint pause time (0 = constant motion, run length =
static network) for base DSR and the combined-techniques variant, averaging
a couple of seeds per point, and prints the three routing metrics as a
table per variant.

    python examples/mobility_sweep.py          # quick (2 seeds, 60 s runs)
    python examples/mobility_sweep.py --full   # denser sweep

The sweep executes through the parallel, content-addressed sweep engine:
``--processes`` fans points out over cores, and ``--cache-dir`` makes
re-runs incremental (only new or changed points simulate).
"""

import argparse
import os
import sys

from repro.analysis.runner import SweepEngine
from repro.analysis.tables import format_series
from repro.core.config import DsrConfig
from repro.scenarios.presets import scaled_scenario

DURATION = 60.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="denser sweep, more seeds")
    parser.add_argument(
        "--processes",
        type=int,
        default=os.cpu_count(),
        help="worker processes (1 = in-process; default: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist results here and skip already-simulated points",
    )
    args = parser.parse_args()

    pauses = [0.0, 20.0, DURATION] if not args.full else [0.0, 10.0, 20.0, 40.0, DURATION]
    seeds = [1, 2] if not args.full else [1, 2, 3, 4, 5]

    engine = SweepEngine.create(processes=args.processes, cache_dir=args.cache_dir)
    variants = {
        "Base DSR": DsrConfig.base(),
        "All techniques": DsrConfig.all_techniques(),
    }
    for name, dsr in variants.items():
        points = engine.sweep(
            lambda pause, seed, d=dsr: scaled_scenario(
                pause_time=pause, packet_rate=3.0, dsr=d, seed=seed, duration=DURATION
            ),
            pauses,
            seeds,
            label=lambda pause: f"{pause:g}",
        )
        print(f"== {name}: metrics vs pause time (s) ==")
        print(format_series(points, x_title="pause"))
        print()
    stats = engine.session_stats()
    print(
        f"[engine] executed {stats['executed']} simulation(s), "
        f"{stats['cache_hits']} from cache, {stats['deduped']} deduplicated",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()

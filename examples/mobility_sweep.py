#!/usr/bin/env python3
"""A miniature of the paper's Figure 2: performance versus mobility.

Sweeps the random-waypoint pause time (0 = constant motion, run length =
static network) for base DSR and the combined-techniques variant, averaging
a couple of seeds per point, and prints the three routing metrics as a
table per variant.

    python examples/mobility_sweep.py          # quick (2 seeds, 60 s runs)
    python examples/mobility_sweep.py --full   # denser sweep
"""

import argparse

from repro.analysis.series import sweep
from repro.analysis.tables import format_series
from repro.core.config import DsrConfig
from repro.scenarios.presets import scaled_scenario

DURATION = 60.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="denser sweep, more seeds")
    args = parser.parse_args()

    pauses = [0.0, 20.0, DURATION] if not args.full else [0.0, 10.0, 20.0, 40.0, DURATION]
    seeds = [1, 2] if not args.full else [1, 2, 3, 4, 5]

    variants = {
        "Base DSR": DsrConfig.base(),
        "All techniques": DsrConfig.all_techniques(),
    }
    for name, dsr in variants.items():
        points = sweep(
            lambda pause, seed, d=dsr: scaled_scenario(
                pause_time=pause, packet_rate=3.0, dsr=d, seed=seed, duration=DURATION
            ),
            pauses,
            seeds,
            label=lambda pause: f"{pause:g}",
        )
        print(f"== {name}: metrics vs pause time (s) ==")
        print(format_series(points, x_title="pause"))
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Profile a whole simulation: hotspots, cache staleness, energy.

Runs one mobile scenario with every analysis instrument attached and
prints:

1. the scenario's physical character (degree, path length, link lifetimes),
2. the paper's routing/cache metrics,
3. the busiest nodes (per-node airtime/drop breakdown),
4. a terminal chart of cache staleness over time, and
5. the radio energy bill.

    python examples/network_profile.py
"""

import statistics

from repro.analysis.plot import render_chart
from repro.analysis.topology import (
    average_degree,
    average_path_length,
    link_lifetimes,
)
from repro.core.config import DsrConfig
from repro.metrics.cachestats import CacheSampler
from repro.metrics.groundtruth import make_validity_oracle
from repro.metrics.pernode import PerNodeCollector
from repro.scenarios.builder import build_simulation
from repro.scenarios.presets import scaled_scenario


def main() -> None:
    config = scaled_scenario(
        pause_time=0.0, dsr=DsrConfig.base(), seed=4, duration=60.0
    ).but(track_energy=True)
    handle = build_simulation(config)

    # 1. Physical character of the scenario.
    lifetimes = link_lifetimes(handle.mobility, config.rx_range, config.duration)
    print("== scenario ==")
    print(f"  nodes/field        : {config.num_nodes} in "
          f"{config.field_width:g} x {config.field_height:g} m")
    print(f"  average degree     : {average_degree(handle.mobility, config.rx_range, 30.0):.1f}")
    print(f"  average path length: {average_path_length(handle.mobility, config.rx_range, 30.0):.2f} hops")
    if lifetimes:
        print(f"  link lifetime      : median {statistics.median(lifetimes):.1f} s "
              f"(n={len(lifetimes)})")

    # Instruments.
    per_node = PerNodeCollector(handle.tracer)
    oracle = make_validity_oracle(handle.sim, handle.neighbors)
    agents = {node_id: node.agent for node_id, node in handle.nodes.items()}
    sampler = CacheSampler(handle.sim, agents, oracle, period=5.0)

    result = handle.run()

    # 2. Headline metrics.
    print("\n== routing metrics (base DSR, constant mobility) ==")
    print(f"  delivery fraction  : {result.packet_delivery_fraction:.3f}")
    print(f"  average delay      : {result.average_delay * 1000:.1f} ms")
    print(f"  normalized overhead: {result.normalized_overhead:.2f}")
    print(f"  good replies       : {result.pct_good_replies:.1f} %")
    print(f"  invalid cache hits : {result.pct_invalid_cache_hits:.1f} %")

    # 3. Hotspots.
    print("\n== busiest nodes ==")
    print(per_node.format_report(top=6))

    # 4. Cache staleness over time.
    series = sampler.stale_fraction_series()
    if series:
        print("\n== stale fraction of all cached routes over time ==")
        print(
            render_chart(
                {"stale": [value for _, value in series]},
                x_labels=[f"{t:g}" for t, _ in series],
                height=8,
                width=50,
                y_label="stale fraction",
            )
        )

    # 5. Energy.
    energy = handle.energy
    communication = energy.communication_joules()
    total = energy.total_joules(config.duration, num_nodes=config.num_nodes)
    print("\n== energy (WaveLAN power model) ==")
    print(f"  communication      : {communication:.1f} J")
    print(f"  total (incl. idle) : {total:.1f} J")
    print(f"  per delivered pkt  : {communication / max(result.data_received, 1) * 1000:.1f} mJ")


if __name__ == "__main__":
    main()

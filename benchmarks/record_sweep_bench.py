"""Record sweep-engine performance into BENCH_sweep.json.

Usage::

    PYTHONPATH=src python benchmarks/record_sweep_bench.py [--processes N]

Measures a figure-shaped sweep (the paper's Figure 2 mobility axis on the
scaled preset, two variants x seeds) three ways:

* **serial** — the historic in-process `repro.analysis.series.sweep`
  baseline, point after point;
* **cold engine** — the sweep engine with an empty content-addressed
  cache, fanned out over worker processes (load-balanced
  ``imap_unordered``, longest-job-first ordering);
* **warm engine** — the same sweep again with the populated cache; this
  must execute **zero** simulations.

The engine's points are asserted equal to the serial baseline's — every
aggregated metric for every sweep point — because a sweep that gets faster
by changing results is a bug, not a win.  Cold speedup scales with core
count (on a single-core host it is ~1x: the engine's only cold advantage
there is cross-variant dedup, which this grid deliberately has none of);
warm speedup is the incremental-reproduction headline and is hardware
independent.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cache import ResultCache  # noqa: E402
from repro.analysis.runner import SweepEngine  # noqa: E402
from repro.analysis.series import sweep  # noqa: E402
from repro.core.config import DsrConfig  # noqa: E402
from repro.scenarios.presets import scaled_scenario  # noqa: E402

DURATION = 40.0
PAUSES = [0.0, 20.0, DURATION]
SEEDS = [1, 2]
VARIANTS = {
    "DSR": DsrConfig.base(),
    "AllTechniques": DsrConfig.all_techniques(),
}


def _run_figure(run_sweep) -> dict:
    """One figure: pause-time sweep per variant, via the given sweep fn."""
    return {
        name: run_sweep(
            lambda pause, seed, d=dsr: scaled_scenario(
                pause_time=pause, packet_rate=3.0, dsr=d, seed=seed, duration=DURATION
            ),
            PAUSES,
            SEEDS,
        )
        for name, dsr in VARIANTS.items()
    }


def _points_equal(a: dict, b: dict) -> bool:
    return a == b  # SweepPoint/Aggregate are dataclasses: full deep equality


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--processes",
        type=int,
        default=os.cpu_count(),
        help="worker processes for the cold/warm engine runs",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sweep.json",
    )
    args = parser.parse_args()
    n_points = len(VARIANTS) * len(PAUSES) * len(SEEDS)

    start = time.perf_counter()
    serial_points = _run_figure(sweep)
    serial_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="sweep-bench-cache-") as cache_dir:
        cold_engine = SweepEngine(
            processes=args.processes, cache=ResultCache(cache_dir)
        )
        start = time.perf_counter()
        cold_points = _run_figure(cold_engine.sweep)
        cold_wall = time.perf_counter() - start
        cold_stats = cold_engine.session_stats()

        warm_engine = SweepEngine(
            processes=args.processes, cache=ResultCache(cache_dir)
        )
        start = time.perf_counter()
        warm_points = _run_figure(warm_engine.sweep)
        warm_wall = time.perf_counter() - start
        warm_stats = warm_engine.session_stats()

    if cold_stats["executed"] != n_points:
        raise SystemExit(f"cold run executed {cold_stats['executed']} != {n_points}")
    if warm_stats["executed"] != 0:
        raise SystemExit(f"warm run executed {warm_stats['executed']} simulations")
    if not (_points_equal(cold_points, serial_points) and _points_equal(warm_points, serial_points)):
        raise SystemExit("engine sweep points diverged from the serial baseline")

    report = {
        "benchmark": "sweep engine (figure-2-shaped mobility sweep, scaled preset)",
        "grid": {
            "variants": sorted(VARIANTS),
            "pauses": PAUSES,
            "seeds": SEEDS,
            "duration_s": DURATION,
            "simulations": n_points,
        },
        "host_cpus": os.cpu_count(),
        "processes": args.processes,
        "serial": {"wall_s": round(serial_wall, 3)},
        "cold_engine": {
            "wall_s": round(cold_wall, 3),
            "executed": cold_stats["executed"],
            "cache_hits": cold_stats["cache_hits"],
        },
        "warm_engine": {
            "wall_s": round(warm_wall, 3),
            "executed": warm_stats["executed"],
            "cache_hits": warm_stats["cache_hits"],
        },
        "speedup": {
            "cold_vs_serial": round(serial_wall / cold_wall, 3),
            "warm_vs_serial": round(serial_wall / warm_wall, 3),
        },
        "aggregates_identical_to_serial": True,
        "note": (
            "cold_vs_serial scales with host_cpus (parallel fan-out); on a "
            "1-CPU host it is ~1x by construction. warm_vs_serial is the "
            "incremental re-run: 0 simulations executed."
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["speedup"], indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

"""Figure 4 — performance versus offered load.

Paper setup: constant mobility (pause 0); the per-session CBR rate sweeps
the aggregate offered load; metrics are received throughput, delay and
normalized overhead.

Expected shape: the combined techniques outperform base DSR across the
load range, with the gap growing at higher loads (where stale-route
pollution — the negative cache's target — is worst).
"""

from __future__ import annotations

from repro.analysis.series import sweep
from repro.analysis.tables import format_series
from repro.core.config import PAPER_VARIANTS

from benchmarks.conftest import bench_scenario, bench_seeds

_VARIANTS = ("DSR", "AdaptiveExpiry", "AllTechniques")
_RATES = [1.0, 3.0, 6.0]


def test_fig4_load_sweep(run_once):
    seeds = bench_seeds()

    def experiment():
        series = {}
        for name in _VARIANTS:
            dsr = PAPER_VARIANTS[name]
            series[name] = sweep(
                lambda rate, seed, d=dsr: bench_scenario(
                    pause_time=0.0, packet_rate=rate, dsr=d, seed=seed
                ),
                _RATES,
                seeds,
                label=lambda rate: f"{rate:g} pkt/s",
            )
        return series

    series = run_once(experiment)
    print()
    for name, points in series.items():
        print(f"Figure 4 [{name}]: metrics vs offered load")
        print(
            format_series(
                points,
                metrics=("throughput_kbps", "delay", "overhead", "pdf"),
                x_title="rate",
            )
        )
        print()

    # Shape: throughput must rise with offered load for every variant, and
    # the combined variant must at least match base DSR at the top rate.
    for name, points in series.items():
        throughputs = [point.metric("throughput_kbps") for point in points]
        assert throughputs[0] < throughputs[-1]
    top_base = series["DSR"][-1].metric("throughput_kbps")
    top_combined = series["AllTechniques"][-1].metric("throughput_kbps")
    assert top_combined >= top_base * 0.9

"""Figure 2 — performance versus mobility (pause time).

Paper setup: pause time swept from 0 (constant motion) to the run length
(static network), packet rate fixed at 3 pkt/s; five curves: base DSR, the
three techniques individually, and all techniques combined.

Expected shape: the combined variant wins on all three metrics at low
pause times (paper: ~16 % delivery, ~22 % overhead, ~40 % delay at pause
0); adaptive expiry > wider error > negative cache among the individual
techniques; all variants converge as mobility vanishes.
"""

from __future__ import annotations

from repro.analysis.series import sweep
from repro.analysis.tables import format_series
from repro.core.config import PAPER_VARIANTS

from benchmarks.conftest import bench_duration, bench_scenario, bench_seeds


def test_fig2_mobility_sweep(run_once):
    seeds = bench_seeds()
    pauses = [0.0, bench_duration() / 3.0, bench_duration()]

    def experiment():
        series = {}
        for name, dsr in PAPER_VARIANTS.items():
            series[name] = sweep(
                lambda pause, seed, d=dsr: bench_scenario(
                    pause_time=pause, packet_rate=3.0, dsr=d, seed=seed
                ),
                pauses,
                seeds,
                label=lambda pause: f"{pause:g}",
            )
        return series

    series = run_once(experiment)
    print()
    for name, points in series.items():
        print(f"Figure 2 [{name}]: metrics vs pause time (s)")
        print(format_series(points, x_title="pause"))
        print()

    # Shape checks at the high-mobility end (pause 0).
    at_zero = {name: points[0] for name, points in series.items()}
    base = at_zero["DSR"]
    combined = at_zero["AllTechniques"]
    assert combined.metric("pdf") >= base.metric("pdf") - 0.05
    assert combined.metric("overhead") <= base.metric("overhead") * 1.15
    for points in series.values():
        for point in points:
            assert 0.0 <= point.metric("pdf") <= 1.0

"""Extension — relative route freshness (the paper's section 6 future work).

Replies carry a generation timestamp; receivers date-check routes against
their link-break history and cache information at its true age (see
:mod:`repro.core.freshness`).  Compared against base DSR and against the
paper's three techniques, alone and combined.
"""

from __future__ import annotations

from repro.analysis.series import compare_variants
from repro.analysis.tables import format_table
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds


def test_ext_freshness_tags(run_once):
    seeds = bench_seeds()
    variants = {
        "base DSR": DsrConfig.base(),
        "freshness tags": DsrConfig.with_freshness_tags(),
        "all techniques": DsrConfig.all_techniques(),
        "all + freshness": DsrConfig.all_techniques().but(freshness_tags=True),
    }

    def experiment():
        return compare_variants(
            {
                name: (
                    lambda seed, d=dsr: bench_scenario(
                        pause_time=0.0, packet_rate=3.0, dsr=d, seed=seed
                    )
                )
                for name, dsr in variants.items()
            },
            seeds,
        )

    rows = run_once(experiment)
    print()
    print("Extension: freshness-tagged replies (pause 0, 3 pkt/s)")
    print(
        format_table(
            rows,
            metrics=("pdf", "overhead", "good_replies_pct", "invalid_cache_pct"),
            row_title="variant",
        )
    )

    base = rows["base DSR"]
    fresh = rows["freshness tags"]
    # Date-checking replies must not wreck delivery (rejecting stale
    # information without a replacement route is roughly neutral; allow
    # generous single-seed noise).
    assert fresh["pdf"] >= base["pdf"] - 0.12
    for row in rows.values():
        assert 0.0 <= row["pdf"] <= 1.0

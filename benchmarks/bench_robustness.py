"""Robustness — do the paper's conclusions survive different assumptions?

The paper's evaluation is random-waypoint over an ideal disk radio.  This
benchmark re-runs base DSR vs all-techniques under:

* Gauss-Markov mobility (smooth correlated motion),
* RPGM group mobility (bursty inter-group link churn), and
* a lossy radio (20 % grey zone at the cell edge),

checking that the combined techniques never *hurt* — the conclusion's
robustness, not its magnitude.
"""

from __future__ import annotations

from repro.analysis.series import compare_variants
from repro.analysis.tables import format_table
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds

_ENVIRONMENTS = {
    "waypoint": {},
    "gauss-markov": {"mobility_model": "gauss_markov"},
    "rpgm": {"mobility_model": "rpgm", "rpgm_groups": 4},
    "grey zone 20%": {"grey_zone_fraction": 0.2},
}


def test_robustness_environments(run_once):
    seeds = bench_seeds()

    def experiment():
        rows = {}
        for env_name, overrides in _ENVIRONMENTS.items():
            for variant_name, dsr in (
                ("DSR", DsrConfig.base()),
                ("AllTechniques", DsrConfig.all_techniques()),
            ):
                def make(seed, d=dsr, o=overrides):
                    return bench_scenario(
                        pause_time=0.0, packet_rate=3.0, dsr=d, seed=seed
                    ).but(**o)

                key = f"{env_name} / {variant_name}"
                rows.update(compare_variants({key: make}, seeds))
        return rows

    rows = run_once(experiment)
    print()
    print("Robustness: base DSR vs all techniques across environments")
    print(format_table(rows, metrics=("pdf", "delay", "overhead"), row_title="environment / variant"))

    for env_name in _ENVIRONMENTS:
        base = rows[f"{env_name} / DSR"]
        combined = rows[f"{env_name} / AllTechniques"]
        assert combined["pdf"] >= base["pdf"] - 0.08, env_name

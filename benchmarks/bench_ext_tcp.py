"""Extension — TCP over stale caches (the paper's related-work claim).

Holland & Vaidya (cited as [6]/[7] in the paper) showed stale DSR routes
can severely degrade TCP: every stalled source route reads as congestion,
collapsing the window.  This benchmark runs greedy Tahoe flows over the
mobile scenario and compares aggregate goodput under base DSR versus the
combined caching techniques.
"""

from __future__ import annotations

from repro.analysis.stats import mean_confidence_interval
from repro.core.config import DsrConfig
from repro.scenarios.builder import build_simulation

from benchmarks.conftest import bench_scenario, bench_seeds


def _tcp_goodput_kbps(dsr: DsrConfig, seed: int) -> float:
    config = bench_scenario(pause_time=0.0, packet_rate=3.0, dsr=dsr, seed=seed).but(
        traffic_type="tcp",
        num_sessions=4,  # a few greedy flows saturate the scaled network
    )
    handle = build_simulation(config)
    handle.sim.run(until=config.duration)
    total_segments = sum(sink.goodput_segments for sink in handle.sinks)
    return total_segments * config.payload_bytes * 8 / 1000.0 / config.duration


def test_ext_tcp_goodput(run_once):
    seeds = bench_seeds()

    def experiment():
        rows = {}
        for name, dsr in (
            ("DSR (base)", DsrConfig.base()),
            ("DSR (all techniques)", DsrConfig.all_techniques()),
        ):
            values = [_tcp_goodput_kbps(dsr, seed) for seed in seeds]
            rows[name] = mean_confidence_interval(values)
        return rows

    rows = run_once(experiment)
    print()
    print("Extension: TCP (Tahoe) aggregate goodput, 4 greedy flows, pause 0")
    for name, (mean, ci) in rows.items():
        print(f"  {name:24s} {mean:8.1f} kb/s  (+/- {ci:.1f})")

    base_mean = rows["DSR (base)"][0]
    combined_mean = rows["DSR (all techniques)"][0]
    assert base_mean > 0 and combined_mean > 0
    # The caching techniques must not substantially hurt TCP.  (Greedy TCP
    # self-limits, so the improvement is smaller and noisier than for CBR.)
    assert combined_mean >= base_mean * 0.8

"""Ablation — route cache capacity.

Hu & Johnson (cited in the paper's related work) studied cache capacity
alongside structure; the paper fixed one size.  This ablation sweeps the
per-node path-cache capacity for base DSR and for the all-techniques
variant.  Expectation: bigger caches help base DSR store alternates but
also hoard stale routes; with the correctness techniques active, capacity
stops mattering because stale stock is actively purged.
"""

from __future__ import annotations

from repro.analysis.series import sweep
from repro.analysis.tables import format_series
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds

_CAPACITIES = [8, 32, 64]


def test_ablation_cache_capacity(run_once):
    seeds = bench_seeds()

    def experiment():
        series = {}
        for name, base in (
            ("DSR", DsrConfig.base()),
            ("AllTechniques", DsrConfig.all_techniques()),
        ):
            series[name] = sweep(
                lambda capacity, seed, b=base: bench_scenario(
                    pause_time=0.0,
                    packet_rate=3.0,
                    dsr=b.but(cache_capacity=int(capacity)),
                    seed=seed,
                ),
                _CAPACITIES,
                seeds,
                label=lambda capacity: f"{int(capacity)} paths",
            )
        return series

    series = run_once(experiment)
    print()
    for name, points in series.items():
        print(f"Ablation: cache capacity [{name}] (pause 0, 3 pkt/s)")
        print(
            format_series(
                points,
                metrics=("pdf", "overhead", "invalid_cache_pct"),
                x_title="capacity",
            )
        )
        print()

    for points in series.values():
        for point in points:
            assert 0.0 <= point.metric("pdf") <= 1.0
    # With the techniques active the capacity axis should be nearly flat.
    combined = series["AllTechniques"]
    pdfs = [point.metric("pdf") for point in combined]
    assert max(pdfs) - min(pdfs) < 0.12

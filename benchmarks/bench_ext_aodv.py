"""Extension — AODV versus DSR on the paper's scenario.

The paper's conclusion (section 6) conjectures the caching techniques
would help "any other protocol that uses caching moderately", naming AODV
(which caches indirectly via intermediate-node replies).  This benchmark
runs AODV over the same scenario family as the DSR variants, giving the
cross-protocol context the conjecture needs.
"""

from __future__ import annotations

from repro.analysis.series import compare_variants
from repro.analysis.tables import format_table
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds


def test_ext_aodv_vs_dsr(run_once):
    seeds = bench_seeds()

    def experiment():
        def dsr_config(seed, dsr):
            return bench_scenario(pause_time=0.0, packet_rate=3.0, dsr=dsr, seed=seed)

        def aodv_config(seed):
            config = bench_scenario(
                pause_time=0.0, packet_rate=3.0, dsr=DsrConfig.base(), seed=seed
            )
            return config.but(protocol="aodv")

        return compare_variants(
            {
                "DSR (base)": lambda seed: dsr_config(seed, DsrConfig.base()),
                "DSR (all techniques)": lambda seed: dsr_config(
                    seed, DsrConfig.all_techniques()
                ),
                "AODV": aodv_config,
            },
            seeds,
        )

    rows = run_once(experiment)
    print()
    print("Extension: AODV vs DSR variants (pause 0, 3 pkt/s)")
    print(format_table(rows, metrics=("pdf", "delay", "overhead"), row_title="protocol"))

    for aggregate_row in rows.values():
        assert 0.0 < aggregate_row["pdf"] <= 1.0

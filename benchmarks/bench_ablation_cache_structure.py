"""Ablation — path cache versus link cache under the same expiry strategy.

The paper uses a path cache and notes (section 5) that Hu & Johnson's
route-expiry study used link caches instead.  This ablation runs both
cache organisations, each with and without adaptive expiry, on identical
scenarios.
"""

from __future__ import annotations

from repro.analysis.series import compare_variants
from repro.analysis.tables import format_table
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds


def test_ablation_cache_structure(run_once):
    seeds = bench_seeds()
    variants = {
        "path cache": DsrConfig.base(),
        "path cache + adaptive expiry": DsrConfig.with_adaptive_expiry(),
        "link cache": DsrConfig(use_link_cache=True),
        "link cache + adaptive expiry": DsrConfig.with_adaptive_expiry().but(
            use_link_cache=True
        ),
    }

    def experiment():
        return compare_variants(
            {
                name: (
                    lambda seed, d=dsr: bench_scenario(
                        pause_time=0.0, packet_rate=3.0, dsr=d, seed=seed
                    )
                )
                for name, dsr in variants.items()
            },
            seeds,
        )

    rows = run_once(experiment)
    print()
    print("Ablation: cache structure x expiry (pause 0, 3 pkt/s)")
    print(
        format_table(
            rows,
            metrics=("pdf", "delay", "overhead", "invalid_cache_pct"),
            row_title="cache",
        )
    )

    for name, aggregate_row in rows.items():
        assert 0.0 <= aggregate_row["pdf"] <= 1.0
    # Expiry should reduce stale cache hits for both organisations.
    assert (
        rows["path cache + adaptive expiry"]["invalid_cache_pct"]
        <= rows["path cache"]["invalid_cache_pct"] + 1.0
    )

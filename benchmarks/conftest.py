"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
(section 4.3) on a *scaled* scenario by default; see
:mod:`repro.scenarios.presets` for how the scaling preserves density and
workload.  Environment knobs:

``REPRO_BENCH_SEEDS``
    Comma-separated seeds, one run per seed per point (default ``1``; the
    paper averaged five mobility scenarios — set ``1,2,3,4,5`` to match).
``REPRO_BENCH_DURATION``
    Simulated seconds per run (default ``90``).
``REPRO_BENCH_SCALE``
    ``scaled`` (default) or ``paper`` for the full 100-node setup (slow:
    minutes per data point).
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.core.config import DsrConfig
from repro.scenarios import presets
from repro.scenarios.config import ScenarioConfig


def bench_seeds() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "1")
    return [int(chunk) for chunk in raw.split(",") if chunk.strip()]


def bench_duration() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", "90"))


def bench_scenario(
    pause_time: float,
    packet_rate: float,
    dsr: DsrConfig,
    seed: int,
) -> ScenarioConfig:
    if os.environ.get("REPRO_BENCH_SCALE", "scaled") == "paper":
        return presets.paper_scenario(
            pause_time=pause_time, packet_rate=packet_rate, dsr=dsr, seed=seed
        )
    return presets.scaled_scenario(
        pause_time=pause_time,
        packet_rate=packet_rate,
        dsr=dsr,
        seed=seed,
        duration=bench_duration(),
    )


@pytest.fixture
def run_once(benchmark):
    """Run a whole experiment exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner

"""Ablation — does the wider-error rebroadcast *gating* matter?

The paper's wider error notification relays an error broadcast only at
nodes that (a) cached the broken link and (b) forwarded traffic over it.
This ablation compares:

* base DSR (unicast errors),
* gated wider error (the paper's design), and
* ungated wider error (every first-time receiver relays — a naive flood).

Expected: gated wider error improves on base DSR without the control-
packet blowup of an unconditional error flood (compare routing_tx).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.agent import DsrAgent
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds


class _UngatedDsrAgent(DsrAgent):
    """Wider error with the relay gate removed (relay every fresh copy)."""

    def _handle_wide_error(self, packet, error):  # noqa: D102
        key = (error.detector, error.error_id)
        if self._seen_errors.seen(key, self._now()):
            return
        self._seen_errors.insert(key, self._now())
        self._absorb_error(error)
        relayed = packet.clone(src=self.node_id, uid=self.node.next_uid())
        self._broadcast_with_jitter(relayed)


def _patched_run(config, agent_cls):
    """Run a scenario with a custom agent class substituted for DsrAgent."""
    import repro.scenarios.builder as builder_module

    original = builder_module.DsrAgent
    builder_module.DsrAgent = agent_cls
    try:
        return builder_module.run_scenario(config)
    finally:
        builder_module.DsrAgent = original


def test_ablation_wider_error_gating(run_once):
    seeds = bench_seeds()

    def experiment():
        from repro.analysis.stats import aggregate

        rows = {}
        rows["base DSR"] = aggregate(
            [
                _patched_run(
                    bench_scenario(0.0, 3.0, DsrConfig.base(), seed), DsrAgent
                )
                for seed in seeds
            ]
        )
        rows["wider error (gated)"] = aggregate(
            [
                _patched_run(
                    bench_scenario(0.0, 3.0, DsrConfig.with_wider_error(), seed),
                    DsrAgent,
                )
                for seed in seeds
            ]
        )
        rows["wider error (ungated)"] = aggregate(
            [
                _patched_run(
                    bench_scenario(0.0, 3.0, DsrConfig.with_wider_error(), seed),
                    _UngatedDsrAgent,
                )
                for seed in seeds
            ]
        )
        return rows

    rows = run_once(experiment)
    print()
    print("Ablation: wider-error rebroadcast gating (pause 0, 3 pkt/s)")
    print(
        format_table(
            rows,
            metrics=("pdf", "overhead", "routing_tx", "good_replies_pct"),
            row_title="variant",
        )
    )

    # The ungated flood must cost more routing transmissions than the gated
    # design — that's the whole point of the gate.
    assert (
        rows["wider error (ungated)"]["routing_tx"]
        >= rows["wider error (gated)"]["routing_tx"]
    )

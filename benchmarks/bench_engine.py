"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these measure the kernel's raw capacity (events/s,
channel transmissions/s, full-stack packets/s) so performance regressions
in the substrate are caught before they silently stretch every experiment.
Unlike the experiment benches these use multiple pytest-benchmark rounds.
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import Simulator


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of 10k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    result = benchmark(run)
    assert result == 10_000


def test_engine_heap_churn(benchmark):
    """Cost of scheduling 10k events up front and cancelling half."""

    def run():
        sim = Simulator()
        rng = np.random.default_rng(1)
        events = [
            sim.schedule(float(delay), lambda: None)
            for delay in rng.uniform(0.0, 100.0, size=10_000)
        ]
        for event in events[::2]:
            event.cancel()
        return sim.run()

    executed = benchmark(run)
    assert executed == 5_000


def test_channel_transmission_throughput(benchmark):
    """End-to-end PHY cost: 1k broadcast frames across a 25-node cell."""
    from repro.mac.frames import Frame, FrameKind
    from repro.mobility.grid import grid_positions
    from repro.mobility.static import StaticModel
    from repro.net.addresses import BROADCAST
    from repro.phy.channel import Channel
    from repro.phy.neighbors import NeighborCache
    from repro.phy.propagation import DiskPropagation
    from repro.phy.radio import Radio

    def run():
        sim = Simulator()
        mobility = StaticModel(grid_positions(5, 5, 100.0))
        neighbors = NeighborCache(mobility, DiskPropagation())
        channel = Channel(sim, neighbors)
        radios = {}
        for node_id in mobility.node_ids:
            radio = Radio(node_id, channel)
            radio.mac = type(
                "M", (), {"on_frame": lambda *a: None, "on_tx_complete": lambda *a: None, "on_medium_change": lambda *a: None}
            )()
            radios[node_id] = radio
        for i in range(1_000):
            sim.schedule(
                i * 0.002,
                radios[i % 25].transmit,
                Frame(FrameKind.DATA, i % 25, BROADCAST),
                0.001,
            )
        return sim.run()

    executed = benchmark(run)
    assert executed >= 1_000


def test_full_stack_packet_throughput(benchmark):
    """Complete protocol stack: one CBR second over a 12-node network."""
    from repro.scenarios.presets import tiny_scenario
    from repro.scenarios.builder import build_simulation

    def run():
        handle = build_simulation(tiny_scenario(seed=1).but(duration=10.0))
        handle.sim.run(until=10.0)
        return handle.metrics.data_received

    delivered = benchmark(run)
    assert delivered > 0


def test_engine_cancel_churn_with_compaction(benchmark):
    """MAC-like churn: every tick arms a far-future timeout and cancels it.

    Without heap compaction the cancelled timeouts pile up (50k corpses by
    the end) and every push/pop pays log(garbage); with it the heap stays
    near its live size.  This is the access pattern of CTS/ACK timeouts,
    which are cancelled far more often than they fire.
    """

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            timeout = sim.schedule(1000.0, lambda: None)
            sim.schedule(0.0005, timeout.cancel)
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run(until=900.0)
        return sim.stats()

    stats = benchmark(run)
    assert stats.cancelled == 50_000
    assert stats.compactions >= 1
    # The whole point: the heap must not retain the cancelled majority.
    assert stats.pending + stats.pending_cancelled < 5_000


def test_engine_stats_smoke(benchmark):
    """stats() is cheap and its counters add up."""

    def run():
        sim = Simulator()
        for i in range(1_000):
            keep = sim.schedule(float(i), lambda: None)
            victim = sim.schedule(float(i) + 0.5, lambda: None)
            victim.cancel()
            assert keep is not None
        executed = sim.run()
        stats = sim.stats()
        assert stats.executed == executed == 1_000
        assert stats.cancelled == 1_000
        assert stats.skipped + stats.pending_cancelled <= 1_000
        return stats

    benchmark(run)

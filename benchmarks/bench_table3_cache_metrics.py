"""Table 3 — cache-correctness metrics per caching technique.

Paper setup: pause time 0 (the Fig. 2 high-mobility point); reports the
percentage of good replies (replies whose route is fully alive when it
reaches the source) and the percentage of invalid cached routes (cache
hits yielding dead routes) for base DSR, each technique alone, and the
combination.

Expected shape: every technique improves both metrics over base DSR;
the combination is best (paper: ~70 % relative improvement in reply
quality); adaptive expiry is the strongest individual technique.
"""

from __future__ import annotations

from repro.analysis.series import compare_variants
from repro.analysis.tables import format_table
from repro.core.config import PAPER_VARIANTS

from benchmarks.conftest import bench_scenario, bench_seeds


def test_table3_cache_metrics(run_once):
    seeds = bench_seeds()

    def experiment():
        variants = {
            name: (
                lambda seed, d=dsr: bench_scenario(
                    pause_time=0.0, packet_rate=3.0, dsr=d, seed=seed
                )
            )
            for name, dsr in PAPER_VARIANTS.items()
        }
        return compare_variants(variants, seeds)

    table = run_once(experiment)
    print()
    print("Table 3: cache-related metrics (pause 0, 3 pkt/s)")
    print(
        format_table(
            table,
            metrics=("good_replies_pct", "invalid_cache_pct", "pdf"),
            row_title="protocol",
        )
    )

    base = table["DSR"]
    combined = table["AllTechniques"]
    # The combined techniques must clearly improve both cache metrics.
    assert combined["good_replies_pct"] > base["good_replies_pct"]
    assert combined["invalid_cache_pct"] < base["invalid_cache_pct"]

"""Record distributed-service performance into BENCH_service.json.

Usage::

    PYTHONPATH=src python benchmarks/record_service_bench.py [--workers N]

Boots a distributed coordinator (``SimulationService(distributed=True)``
behind the real HTTP API) and measures one cold scenario sweep three ways:

* **single-process baseline** — the same scenarios through ``run_many``,
  no service involved;
* **1 worker** — one ``repro-worker`` subprocess pulling shards;
* **N workers** — a fleet of worker subprocesses pulling concurrently.

Every service run's results are asserted bit-identical to the baseline —
a fleet that gets faster by changing results is a bug, not a win.  After
the fleet run, a *fresh* worker cache backed only by the coordinator's
remote tier must execute **zero** simulations: the remote cache extends
warm-sweep semantics fleet-wide.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cache import HTTPCacheTier, TieredResultCache  # noqa: E402
from repro.analysis.runner import SweepEngine, run_many  # noqa: E402
from repro.scenarios.presets import tiny_scenario  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.core import SimulationService  # noqa: E402
from repro.service.http import ServiceHTTPServer  # noqa: E402

DURATION = 60.0
SEEDS = list(range(1, 9))
SHARD_SIZE = 2

REPO_ROOT = Path(__file__).resolve().parent.parent


def _configs():
    return [
        tiny_scenario(seed=seed).but(packet_rate=3.0, duration=DURATION)
        for seed in SEEDS
    ]


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _fleet_run(n_workers: int, workdir: Path) -> dict:
    """One cold sweep through a fresh coordinator + n worker processes."""
    service = SimulationService(
        distributed=True,
        cache_dir=str(workdir / "coordinator-cache"),
        shard_size=SHARD_SIZE,
        lease_ttl_s=10.0,
    )
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    service.start()
    thread.start()
    url = f"http://127.0.0.1:{httpd.port}"
    workers = []
    try:
        for i in range(n_workers):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.service.cli", "worker",
                        "--url", url,
                        "--worker-id", f"bench-w{i}",
                        "--cache-dir", str(workdir / f"worker-{i}-cache"),
                        "--poll", "0.05",
                    ],
                    env=_worker_env(),
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        client = ServiceClient(url, client_id="bench", timeout=60.0)
        start = time.perf_counter()
        results = client.fetch(client.submit(_configs()), timeout=3600)
        wall = time.perf_counter() - start
        fleet = client.leases()["fleet"]
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=30)
        httpd.shutdown()
        service.drain(grace_s=10.0)
    return {"wall_s": wall, "results": results, "fleet": fleet, "url": url}


def _remote_tier_rerun(workdir: Path) -> dict:
    """A fresh local cache against the populated coordinator remote tier
    must resolve the whole sweep with zero executions."""
    service = SimulationService(
        distributed=True,
        cache_dir=str(workdir / "coordinator-cache"),  # populated by the fleet
        shard_size=SHARD_SIZE,
    )
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    service.start()
    thread.start()
    try:
        cache = TieredResultCache(
            workdir / "fresh-machine-cache",
            HTTPCacheTier(f"http://127.0.0.1:{httpd.port}"),
        )
        engine = SweepEngine(processes=1, cache=cache)
        start = time.perf_counter()
        report = engine.run(_configs())
        wall = time.perf_counter() - start
    finally:
        httpd.shutdown()
        service.drain(grace_s=10.0)
    return {"wall_s": wall, "executed": report.executed, "results": report.results}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="fleet size for the N-worker run (always >= 2 so the run "
        "exercises real concurrency, even on a 1-CPU host)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
    )
    args = parser.parse_args()

    start = time.perf_counter()
    baseline = run_many(_configs(), processes=1)
    baseline_wall = time.perf_counter() - start

    root = Path(tempfile.mkdtemp(prefix="service-bench-"))
    try:
        single = _fleet_run(1, root / "single")
        fleet = _fleet_run(args.workers, root / "fleet")
        if single["results"] != baseline or fleet["results"] != baseline:
            raise SystemExit("service results diverged from single-process run_many")
        rerun = _remote_tier_rerun(root / "fleet")
        if rerun["executed"] != 0:
            raise SystemExit(
                f"remote-tier rerun executed {rerun['executed']} simulations"
            )
        if rerun["results"] != baseline:
            raise SystemExit("remote-tier rerun results diverged from baseline")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    report = {
        "benchmark": "distributed service (coordinator + repro-worker fleet)",
        "grid": {
            "preset": "tiny",
            "seeds": SEEDS,
            "duration_s": DURATION,
            "simulations": len(SEEDS),
            "shard_size": SHARD_SIZE,
        },
        "host_cpus": os.cpu_count(),
        "fleet_size": args.workers,
        "single_process_run_many": {"wall_s": round(baseline_wall, 3)},
        "one_worker": {
            "wall_s": round(single["wall_s"], 3),
            "shards_completed": single["fleet"]["shards_completed"],
        },
        "n_workers": {
            "wall_s": round(fleet["wall_s"], 3),
            "shards_completed": fleet["fleet"]["shards_completed"],
            "leases_granted": fleet["fleet"]["leases_granted"],
        },
        "remote_tier_rerun": {
            "wall_s": round(rerun["wall_s"], 3),
            "executed": 0,
            "note": "fresh local cache + coordinator remote tier: pure hits",
        },
        "speedup": {
            "n_workers_vs_one_worker": round(
                single["wall_s"] / fleet["wall_s"], 3
            ),
            "n_workers_vs_run_many": round(
                baseline_wall / fleet["wall_s"], 3
            ),
        },
        "aggregates_identical_to_run_many": True,
        "note": (
            "worker processes execute shards truly concurrently, so "
            "n_workers_vs_one_worker scales with host_cpus; on a 1-CPU "
            "host it is ~1x (plus HTTP/lease overhead) by construction. "
            "remote_tier_rerun is the fleet-wide warm sweep: a machine "
            "that never ran anything executes 0 simulations."
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["speedup"], indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

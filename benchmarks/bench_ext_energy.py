"""Extension — energy per delivered packet.

"Limited bandwidth and battery power" is the paper's opening motivation;
normalized overhead is its bandwidth metric.  This benchmark adds the
battery twin: radio energy (Feeney-Nilsson WaveLAN power model) divided by
delivered data packets, for base DSR versus the combined techniques.
Stale-route transmissions cost energy at the sender *and* at every
overhearing neighbour, so cache correctness should show up directly.
"""

from __future__ import annotations

from repro.analysis.stats import mean_confidence_interval
from repro.core.config import DsrConfig
from repro.scenarios.builder import build_simulation

from benchmarks.conftest import bench_scenario, bench_seeds


def _energy_per_packet(dsr: DsrConfig, seed: int) -> tuple[float, float]:
    config = bench_scenario(pause_time=0.0, packet_rate=3.0, dsr=dsr, seed=seed).but(
        track_energy=True
    )
    handle = build_simulation(config)
    result = handle.run()
    delivered = max(result.data_received, 1)
    communication_j = handle.energy.communication_joules()
    return communication_j / delivered, result.packet_delivery_fraction


def test_ext_energy_per_packet(run_once):
    seeds = bench_seeds()

    def experiment():
        rows = {}
        for name, dsr in (
            ("DSR (base)", DsrConfig.base()),
            ("DSR (all techniques)", DsrConfig.all_techniques()),
        ):
            samples = [_energy_per_packet(dsr, seed) for seed in seeds]
            energy = mean_confidence_interval([s[0] for s in samples])
            pdf = mean_confidence_interval([s[1] for s in samples])
            rows[name] = (energy, pdf)
        return rows

    rows = run_once(experiment)
    print()
    print("Extension: communication energy per delivered packet (pause 0, 3 pkt/s)")
    for name, ((energy_mean, energy_ci), (pdf_mean, _)) in rows.items():
        print(
            f"  {name:24s} {energy_mean * 1000:8.2f} mJ/pkt (+/- {energy_ci * 1000:.2f})"
            f"   delivery {pdf_mean:.3f}"
        )

    base_energy = rows["DSR (base)"][0][0]
    combined_energy = rows["DSR (all techniques)"][0][0]
    # Cache correctness must not cost energy per useful packet.
    assert combined_energy <= base_energy * 1.05

"""Record kernel performance into BENCH_kernel.json.

Usage::

    PYTHONPATH=src python benchmarks/record_kernel_bench.py [--rounds N]

Measures the simulation kernel after the vectorized-PHY/compacting-engine
work and compares it against the pre-optimisation baseline (captured from
the seed tree on the same machine with the same best-of-N protocol):

* full-run wall time of the scaled pause-0 scenario (the paper's hardest
  mobility point: continuous motion),
* engine event throughput (chained-tick microbenchmark),
* engine throughput under MAC-like cancel churn (the case heap compaction
  exists for),
* a node-count scaling curve (100/300/1000 nodes at the paper's density)
  for the per-quantum neighbour refresh, all-pairs matrix vs uniform-grid
  cell list, with the neighbour sets asserted identical,
* a 100-node cross-backend full simulation, metrics asserted bit-identical,
* seed-batched ``run_many`` vs per-seed pool dispatch on a multi-seed
  100-node sweep, results asserted identical,
* a lossy-profile run (probabilistic reception drawing per-listener loss
  decisions on the channel hot path), asserted seed-deterministic.

The scenario's metrics are asserted equal to the baseline's, bit for bit —
a speedup that changes simulation output is a bug, not a win.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.runner import run_many  # noqa: E402
from repro.mobility.waypoint import RandomWaypointModel  # noqa: E402
from repro.phy.neighbors import NeighborCache  # noqa: E402
from repro.phy.propagation import DiskPropagation  # noqa: E402
from repro.scenarios.builder import build_simulation, run_scenario  # noqa: E402
from repro.scenarios.presets import (  # noqa: E402
    lossy_scenario,
    paper_scenario,
    scaled_scenario,
)
from repro.sim.engine import Simulator  # noqa: E402

# The paper's node density (100 nodes per 2200 m x 600 m), held constant as
# the node count grows so neighbourhood size — and therefore the grid's
# per-query work — stays realistic while the all-pairs matrix grows as n^2.
SCALING_FIELDS = (
    (100, 2200.0, 600.0),
    (300, 3811.0, 1039.0),
    (1000, 6957.0, 1897.0),
)

# Captured from the seed tree (commit 1591702) on the same host, same
# best-of-3 protocol, before any of the hot-path work in this change.
BASELINE = {
    "full_run_wall_s": 4.617,
    "chained_events_per_s": 912_064,
    "cancel_churn_events_per_s": 199_257,
    "metrics": {
        "data_sent": 2741,
        "data_received": 2705,
        "delay_sum": 37.56623948670993,
    },
}


def measure_full_run(rounds: int) -> dict:
    walls = []
    result = None
    stats = None
    for _ in range(rounds):
        config = scaled_scenario(pause_time=0.0, seed=1)
        start = time.perf_counter()
        handle = build_simulation(config)
        result = handle.run()
        walls.append(time.perf_counter() - start)
        stats = handle.sim.stats()
    metrics = {
        "data_sent": result.data_sent,
        "data_received": result.data_received,
        "delay_sum": result.delay_sum,
    }
    if metrics != BASELINE["metrics"]:
        raise SystemExit(
            f"metrics drifted from baseline: {metrics} != {BASELINE['metrics']}"
        )
    wall = min(walls)
    return {
        "wall_s": round(wall, 3),
        "wall_s_all_rounds": [round(w, 3) for w in walls],
        "events_per_s": round((stats.executed + stats.skipped) / wall),
        "metrics": metrics,
        "engine_stats": dataclasses.asdict(stats),
    }


def measure_chained(rounds: int, n: int = 200_000) -> float:
    def once() -> float:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run()
        return n / (time.perf_counter() - start)

    return max(once() for _ in range(rounds))


def measure_cancel_churn(rounds: int, n: int = 50_000) -> float:
    def once() -> float:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            timeout = sim.schedule(1000.0, lambda: None)
            sim.schedule(0.0005, timeout.cancel)
            if count[0] < n:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run(until=900.0)
        return 3 * n / (time.perf_counter() - start)

    return max(once() for _ in range(rounds))


def _refresh_loop(cache: NeighborCache, duration: float, quantum: float, senders) -> float:
    """Wall time of a sim-shaped neighbour workload: one refresh per quantum
    plus rx/cs queries for a handful of concurrently active senders."""
    start = time.perf_counter()
    for t in np.arange(0.0, duration, quantum):
        now = float(t)
        for node_id in senders:
            cache.rx_neighbors(node_id, now)
            cache.cs_neighbors(node_id, now)
    return time.perf_counter() - start


def measure_scaling(rounds: int, duration: float = 20.0, quantum: float = 0.05) -> list:
    propagation = DiskPropagation(rx_range=250.0, cs_range=550.0)
    entries = []
    for n, width, height in SCALING_FIELDS:
        model = RandomWaypointModel(
            num_nodes=n,
            width=width,
            height=height,
            duration=duration,
            rng=np.random.default_rng(97),
            max_speed=20.0,
            pause_time=0.0,
        )
        senders = list(range(0, n, max(1, n // 8)))

        def fresh(index: str) -> NeighborCache:
            return NeighborCache(model, propagation, quantum=quantum, index=index)

        walls = {
            index: min(
                _refresh_loop(fresh(index), duration, quantum, senders)
                for _ in range(rounds)
            )
            for index in ("allpairs", "grid")
        }

        # The speedup only counts if the answers are the same.
        allpairs, grid = fresh("allpairs"), fresh("grid")
        for t in (0.0, duration / 2.0, duration - quantum):
            for node_id in senders:
                if allpairs.rx_neighbors(node_id, t) != grid.rx_neighbors(
                    node_id, t
                ) or allpairs.cs_neighbors(node_id, t) != grid.cs_neighbors(node_id, t):
                    raise SystemExit(
                        f"index divergence at n={n}, t={t}, node {node_id}"
                    )

        entries.append(
            {
                "nodes": n,
                "field_m": [width, height],
                "allpairs_refresh_wall_s": round(walls["allpairs"], 3),
                "grid_refresh_wall_s": round(walls["grid"], 3),
                "speedup": round(walls["allpairs"] / walls["grid"], 1),
                "neighbor_sets_identical": True,
            }
        )
    return entries


def _bench_scenario(seed: int):
    return paper_scenario(pause_time=0.0, seed=seed).but(duration=12.0, num_sessions=8)


def measure_cross_index() -> dict:
    """Full 100-node simulations must not depend on the index backend."""
    results = {
        index: run_scenario(_bench_scenario(7).but(neighbor_index=index))
        for index in ("allpairs", "grid")
    }
    if results["allpairs"] != results["grid"]:
        raise SystemExit("100-node metrics diverged between index backends")
    return {
        "scenario": "paper_scenario(pause_time=0.0, seed=7).but(duration=12.0, num_sessions=8)",
        "metrics": {
            "data_sent": results["grid"].data_sent,
            "data_received": results["grid"].data_received,
            "delay_sum": results["grid"].delay_sum,
        },
        "bit_identical": True,
    }


def measure_seed_batch(rounds: int, seeds: int = 4) -> dict:
    """Per-seed pool dispatch vs one seed-batched unit for the same sweep."""
    configs = [_bench_scenario(seed) for seed in range(1, seeds + 1)]

    def run(seed_batch: int):
        start = time.perf_counter()
        results = run_many(configs, processes=2, seed_batch=seed_batch)
        return time.perf_counter() - start, results

    per_seed_walls, batched_walls = [], []
    expected = None
    for _ in range(rounds):
        wall, results = run(1)
        per_seed_walls.append(wall)
        expected = results
        wall, results = run(len(configs))
        batched_walls.append(wall)
        if results != expected:
            raise SystemExit("seed-batched sweep results diverged from per-seed")
    per_seed, batched = min(per_seed_walls), min(batched_walls)
    return {
        "scenario": "paper_scenario(pause_time=0.0).but(duration=12.0, num_sessions=8)",
        "seeds": seeds,
        "processes": 2,
        "per_seed_dispatch_wall_s": round(per_seed, 3),
        "seed_batched_wall_s": round(batched, 3),
        "speedup": round(per_seed / batched, 2),
        "results_identical": True,
    }


def measure_lossy_profile(rounds: int) -> dict:
    """Wall time of a probabilistic-reception run (per-listener loss draws on
    the channel hot path), with a same-seed bit-identity check."""
    config = lossy_scenario(link_loss=0.2, seed=1)
    walls = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_scenario(config)
        walls.append(time.perf_counter() - start)
    if run_scenario(config) != result:
        raise SystemExit("lossy-profile run is not seed-deterministic")
    return {
        "scenario": "lossy_scenario(link_loss=0.2, seed=1)",
        "wall_s": round(min(walls), 3),
        "metrics": {
            "data_sent": result.data_sent,
            "data_received": result.data_received,
            "link_breaks": result.link_breaks,
        },
        "seed_deterministic": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3, help="best-of-N rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernel.json",
    )
    args = parser.parse_args()

    full = measure_full_run(args.rounds)
    chained = measure_chained(args.rounds)
    churn = measure_cancel_churn(args.rounds)
    # Scaling and sweep benches are heavier per round; best-of-2 is plenty.
    slow_rounds = max(1, min(args.rounds, 2))
    scaling = measure_scaling(slow_rounds)
    cross_index = measure_cross_index()
    seed_batch = measure_seed_batch(slow_rounds)
    lossy = measure_lossy_profile(slow_rounds)

    report = {
        "benchmark": "kernel hot path (scaled pause-0 scenario + engine microbenches)",
        "protocol": f"best of {args.rounds} rounds, wall time via perf_counter",
        "scenario": "scaled_scenario(pause_time=0.0, seed=1)",
        "baseline": BASELINE,
        "current": {
            "full_run_wall_s": full["wall_s"],
            "full_run_wall_s_all_rounds": full["wall_s_all_rounds"],
            "full_run_events_per_s": full["events_per_s"],
            "chained_events_per_s": round(chained),
            "cancel_churn_events_per_s": round(churn),
            "metrics": full["metrics"],
            "engine_stats": full["engine_stats"],
        },
        "speedup": {
            "full_run_wall": round(BASELINE["full_run_wall_s"] / full["wall_s"], 3),
            "chained_events": round(chained / BASELINE["chained_events_per_s"], 3),
            "cancel_churn_events": round(
                churn / BASELINE["cancel_churn_events_per_s"], 3
            ),
        },
        "metrics_bit_identical_to_baseline": True,
        "neighbor_index_scaling": {
            "workload": (
                "20 s of 0.05 s quanta, random-waypoint at the paper's density, "
                "rx+cs queries for ~8 active senders per quantum"
            ),
            "protocol": f"best of {slow_rounds} rounds",
            "curve": scaling,
        },
        "cross_index_full_run": cross_index,
        "seed_batched_sweep": seed_batch,
        "lossy_profile_run": lossy,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["speedup"], indent=2))
    print(json.dumps(scaling, indent=2))
    print(json.dumps(seed_batch, indent=2))
    print(json.dumps(lossy, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

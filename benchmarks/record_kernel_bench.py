"""Record kernel performance into BENCH_kernel.json.

Usage::

    PYTHONPATH=src python benchmarks/record_kernel_bench.py [--rounds N]

Measures the simulation kernel after the vectorized-PHY/compacting-engine
work and compares it against the pre-optimisation baseline (captured from
the seed tree on the same machine with the same best-of-N protocol):

* full-run wall time of the scaled pause-0 scenario (the paper's hardest
  mobility point: continuous motion),
* engine event throughput (chained-tick microbenchmark),
* engine throughput under MAC-like cancel churn (the case heap compaction
  exists for).

The scenario's metrics are asserted equal to the baseline's, bit for bit —
a speedup that changes simulation output is a bug, not a win.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios.builder import build_simulation  # noqa: E402
from repro.scenarios.presets import scaled_scenario  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

# Captured from the seed tree (commit 1591702) on the same host, same
# best-of-3 protocol, before any of the hot-path work in this change.
BASELINE = {
    "full_run_wall_s": 4.617,
    "chained_events_per_s": 912_064,
    "cancel_churn_events_per_s": 199_257,
    "metrics": {
        "data_sent": 2741,
        "data_received": 2705,
        "delay_sum": 37.56623948670993,
    },
}


def measure_full_run(rounds: int) -> dict:
    walls = []
    result = None
    stats = None
    for _ in range(rounds):
        config = scaled_scenario(pause_time=0.0, seed=1)
        start = time.perf_counter()
        handle = build_simulation(config)
        result = handle.run()
        walls.append(time.perf_counter() - start)
        stats = handle.sim.stats()
    metrics = {
        "data_sent": result.data_sent,
        "data_received": result.data_received,
        "delay_sum": result.delay_sum,
    }
    if metrics != BASELINE["metrics"]:
        raise SystemExit(
            f"metrics drifted from baseline: {metrics} != {BASELINE['metrics']}"
        )
    wall = min(walls)
    return {
        "wall_s": round(wall, 3),
        "wall_s_all_rounds": [round(w, 3) for w in walls],
        "events_per_s": round((stats.executed + stats.skipped) / wall),
        "metrics": metrics,
        "engine_stats": dataclasses.asdict(stats),
    }


def measure_chained(rounds: int, n: int = 200_000) -> float:
    def once() -> float:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run()
        return n / (time.perf_counter() - start)

    return max(once() for _ in range(rounds))


def measure_cancel_churn(rounds: int, n: int = 50_000) -> float:
    def once() -> float:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            timeout = sim.schedule(1000.0, lambda: None)
            sim.schedule(0.0005, timeout.cancel)
            if count[0] < n:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run(until=900.0)
        return 3 * n / (time.perf_counter() - start)

    return max(once() for _ in range(rounds))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3, help="best-of-N rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernel.json",
    )
    args = parser.parse_args()

    full = measure_full_run(args.rounds)
    chained = measure_chained(args.rounds)
    churn = measure_cancel_churn(args.rounds)

    report = {
        "benchmark": "kernel hot path (scaled pause-0 scenario + engine microbenches)",
        "protocol": f"best of {args.rounds} rounds, wall time via perf_counter",
        "scenario": "scaled_scenario(pause_time=0.0, seed=1)",
        "baseline": BASELINE,
        "current": {
            "full_run_wall_s": full["wall_s"],
            "full_run_wall_s_all_rounds": full["wall_s_all_rounds"],
            "full_run_events_per_s": full["events_per_s"],
            "chained_events_per_s": round(chained),
            "cancel_churn_events_per_s": round(churn),
            "metrics": full["metrics"],
            "engine_stats": full["engine_stats"],
        },
        "speedup": {
            "full_run_wall": round(BASELINE["full_run_wall_s"] / full["wall_s"], 3),
            "chained_events": round(chained / BASELINE["chained_events_per_s"], 3),
            "cancel_churn_events": round(
                churn / BASELINE["cancel_churn_events_per_s"], 3
            ),
        },
        "metrics_bit_identical_to_baseline": True,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["speedup"], indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

"""Figure 1 — performance versus route-expiry timeout period.

Paper setup: pause time 0 (constant mobility), 3 packets/s per session;
x-axis sweeps static timeouts from 1 to 50 seconds, with two reference
curves: base DSR (no timeout) and the adaptive timeout heuristic.

Expected shape (paper section 4.3): a 1 s timeout is *worse than no
timeout at all*; performance improves toward an optimum around 10 s and
degrades again for large timeouts; the adaptive mechanism tracks a
well-chosen static value.
"""

from __future__ import annotations

import os

from repro.analysis.series import sweep
from repro.analysis.tables import format_series
from repro.core.config import DsrConfig

from benchmarks.conftest import bench_scenario, bench_seeds


def test_fig1_timeout_sweep(run_once):
    if os.environ.get("REPRO_BENCH_SCALE", "scaled") == "paper":
        # The paper's axis: 1..50 s (optimum ~10 s at ~10 s route lifetimes).
        timeouts = [1.0, 5.0, 10.0, 30.0, 50.0]
    else:
        # The scaled scenario has ~2 s median route lifetimes, so the whole
        # U-curve shifts left; sweep proportionally smaller timeouts.
        timeouts = [0.3, 1.0, 3.0, 10.0, 30.0]
    seeds = bench_seeds()

    def experiment():
        static_points = sweep(
            lambda timeout, seed: bench_scenario(
                pause_time=0.0,
                packet_rate=3.0,
                dsr=DsrConfig.with_static_expiry(timeout),
                seed=seed,
            ),
            timeouts,
            seeds,
            label=lambda timeout: f"static {timeout:g}s",
        )
        reference_points = sweep(
            lambda idx, seed: bench_scenario(
                pause_time=0.0,
                packet_rate=3.0,
                dsr=DsrConfig.base() if idx == 0 else DsrConfig.with_adaptive_expiry(),
                seed=seed,
            ),
            [0, 1],
            seeds,
            label=lambda idx: "no timeout" if idx == 0 else "adaptive",
        )
        return reference_points + static_points

    points = run_once(experiment)
    print()
    print("Figure 1: performance vs timeout period (pause 0, 3 pkt/s)")
    print(format_series(points, x_title="timeout"))

    by_label = {point.label: point for point in points}
    for point in points:
        pdf = point.metric("pdf")
        assert 0.0 <= pdf <= 1.0
        assert point.metric("delay") >= 0.0
    # Sanity on the paper's headline ordering (lenient: scaled, few seeds):
    # adaptive must be competitive with the best static timeout.
    best_static = max(p.metric("pdf") for p in points if p.label.startswith("static"))
    assert by_label["adaptive"].metric("pdf") >= best_static - 0.1

"""Record observability overhead into BENCH_obs.json.

Usage::

    PYTHONPATH=src python benchmarks/record_obs_bench.py [--repeats N]

Runs the scaled pause-0 scenario (the repo's standard full-run workload)
under increasing levels of observation and records the wall time of each
mode, best of N:

* **plain** — no observability objects at all (the baseline);
* **obs_off** — an `Observability()` facade attached with nothing
  enabled: must cost nothing, pinning the zero-cost-when-off claim;
* **metrics_on** — `IntervalMetrics` at a 5 s cadence;
* **profile_on** — the engine profiler (duplicated run loop);
* **full_trace** — a wildcard jsonl `TraceFileWriter`, the most
  expensive mode (every guarded emit fires and is serialized).

Two gates make this a regression test, not just a stopwatch:

1. every mode's `SimulationResult` must be **bit-identical** to the
   plain baseline (observation never changes simulation metrics);
2. the `obs_off` overhead versus `plain` must stay **under 2 %** —
   attaching the facade without enabling anything may not tax the
   hot path (TRC001 guarded emits stay one dict lookup).

The enabled modes' overheads are recorded for tracking but not gated:
they do real extra work by design and their cost is hardware-dependent.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import Observability  # noqa: E402
from repro.scenarios.builder import build_simulation  # noqa: E402
from repro.scenarios.presets import scaled_scenario  # noqa: E402
from repro.sim.tracefile import TraceFileWriter  # noqa: E402

DISABLED_BUDGET_PCT = 2.0


def _config():
    return scaled_scenario(pause_time=0.0, seed=1)


def _run_plain():
    return build_simulation(_config()).run()


def _run_obs_off():
    handle = build_simulation(_config())
    obs = Observability().attach(handle)
    return obs.run(handle)


def _run_metrics_on():
    handle = build_simulation(_config())
    obs = Observability(metrics_interval=5.0).attach(handle)
    return obs.run(handle)


def _run_profile_on():
    handle = build_simulation(_config())
    obs = Observability(profile=True).attach(handle)
    return obs.run(handle)


def _make_full_trace(trace_dir: Path):
    def run():
        handle = build_simulation(_config())
        with TraceFileWriter(handle.tracer, trace_dir / "run.jsonl", fmt="jsonl"):
            return handle.run()

    return run


def _best_of(fn, repeats: int):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N walls")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_obs.json",
    )
    args = parser.parse_args()

    import tempfile

    with tempfile.TemporaryDirectory(prefix="obs-bench-trace-") as trace_dir:
        modes = [
            ("plain", _run_plain),
            ("obs_off", _run_obs_off),
            ("metrics_on", _run_metrics_on),
            ("profile_on", _run_profile_on),
            ("full_trace", _make_full_trace(Path(trace_dir))),
        ]
        walls = {}
        results = {}
        for name, fn in modes:
            walls[name], results[name] = _best_of(fn, args.repeats)
            print(f"{name:<12} {walls[name]:.3f} s")

    baseline = results["plain"]
    for name, result in results.items():
        if result != baseline:
            raise SystemExit(
                f"mode {name!r} changed simulation metrics — the "
                "observability layer must be bit-identical"
            )

    overheads = {
        name: round(100.0 * (walls[name] / walls["plain"] - 1.0), 2)
        for name in walls
        if name != "plain"
    }
    if overheads["obs_off"] >= DISABLED_BUDGET_PCT:
        raise SystemExit(
            f"disabled-observability overhead {overheads['obs_off']:.2f}% "
            f"exceeds the {DISABLED_BUDGET_PCT}% budget"
        )

    config = _config()
    report = {
        "benchmark": "observability overhead (scaled pause-0 full run)",
        "scenario": {
            "num_nodes": config.num_nodes,
            "duration_s": config.duration,
            "pause_time_s": config.pause_time,
            "seed": config.seed,
        },
        "repeats": args.repeats,
        "wall_s": {name: round(wall, 3) for name, wall in walls.items()},
        "overhead_pct_vs_plain": overheads,
        "disabled_budget_pct": DISABLED_BUDGET_PCT,
        "metrics_identical_across_modes": True,
        "note": (
            "obs_off is gated (<2%): an attached-but-idle facade may not tax "
            "the hot path. metrics_on/profile_on/full_trace do real extra "
            "work and are tracked, not gated."
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(overheads, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

"""Record observability overhead into BENCH_obs.json.

Usage::

    PYTHONPATH=src python benchmarks/record_obs_bench.py [--repeats N]
    PYTHONPATH=src python benchmarks/record_obs_bench.py --mode fleet

``--mode sim`` (the default) runs the scaled pause-0 scenario (the
repo's standard full-run workload) under increasing levels of
observation and records the wall time of each mode, best of N:

* **plain** — no observability objects at all (the baseline);
* **obs_off** — an `Observability()` facade attached with nothing
  enabled: must cost nothing, pinning the zero-cost-when-off claim;
* **metrics_on** — `IntervalMetrics` at a 5 s cadence;
* **profile_on** — the engine profiler (duplicated run loop);
* **full_trace** — a wildcard jsonl `TraceFileWriter`, the most
  expensive mode (every guarded emit fires and is serialized).

Two gates make this a regression test, not just a stopwatch:

1. every mode's `SimulationResult` must be **bit-identical** to the
   plain baseline (observation never changes simulation metrics);
2. the `obs_off` overhead versus `plain` must stay **under 2 %** —
   attaching the facade without enabling anything may not tax the
   hot path (TRC001 guarded emits stay one dict lookup).

The enabled modes' overheads are recorded for tracking but not gated:
they do real extra work by design and their cost is hardware-dependent.

``--mode fleet`` measures the *fleet tracing* layer instead: a
coordination-dominated service job (many trivial tasks, so the service
machinery is the whole wall) run three ways — no tracer at all, a
disabled :class:`~repro.obs.fleet.FleetTracer`, and tracing on.  Gates:
job results identical across the three, and the **disabled** tracer's
overhead versus no-tracer stays under 2 %.  The fleet section merges
into the same BENCH_obs.json next to the sim report.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import Observability  # noqa: E402
from repro.scenarios.builder import build_simulation  # noqa: E402
from repro.scenarios.presets import scaled_scenario  # noqa: E402
from repro.sim.tracefile import TraceFileWriter  # noqa: E402

DISABLED_BUDGET_PCT = 2.0


def _config():
    return scaled_scenario(pause_time=0.0, seed=1)


def _run_plain():
    return build_simulation(_config()).run()


def _run_obs_off():
    handle = build_simulation(_config())
    obs = Observability().attach(handle)
    return obs.run(handle)


def _run_metrics_on():
    handle = build_simulation(_config())
    obs = Observability(metrics_interval=5.0).attach(handle)
    return obs.run(handle)


def _run_profile_on():
    handle = build_simulation(_config())
    obs = Observability(profile=True).attach(handle)
    return obs.run(handle)


def _make_full_trace(trace_dir: Path):
    def run():
        handle = build_simulation(_config())
        with TraceFileWriter(handle.tracer, trace_dir / "run.jsonl", fmt="jsonl"):
            return handle.run()

    return run


def _best_of(fn, repeats: int):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best, result


# -- fleet tracing mode ------------------------------------------------------

FLEET_SCENARIOS = 1000
# A host's CPU-time noise floor is a few percent per run and drifts
# slowly; many short, tightly paired iterations let the trimmed-mean
# estimator resolve a 2% gate that a best-of-a-few cannot.
FLEET_MIN_REPEATS = 36


def _fleet_task(payload):
    """A trivial deterministic task: the service machinery IS the wall."""
    from repro.metrics.collector import SimulationResult

    seed = int(payload["seed"])
    return SimulationResult(
        duration=float(payload["duration"]),
        data_sent=100 + seed,
        data_received=90 + seed,
        duplicate_deliveries=0,
        delay_sum=0.5 * seed,
        mac_control_tx=10,
        routing_tx=20 + seed,
        data_tx=200,
        mac_failures=0,
        ifq_drops=0,
        rreq_sent=5,
        replies_received=4,
        good_replies=4,
        cache_replies_received=1,
        replies_sent_from_cache=1,
        replies_sent_from_target=3,
        cache_hits=2,
        invalid_cache_hits=0,
        link_breaks=1,
        salvages=0,
        throughput_kbps=8.0 + seed,
    )


def _fleet_payloads():
    from repro.scenarios.config import ScenarioConfig
    from repro.scenarios.io import scenario_to_dict

    return [
        scenario_to_dict(
            ScenarioConfig(
                num_nodes=10,
                field_width=500.0,
                field_height=300.0,
                duration=12.0,
                num_sessions=3,
                pause_time=0.0,
                seed=seed,
            )
        )
        for seed in range(1, FLEET_SCENARIOS + 1)
    ]


def _run_fleet_once(tracer_factory, payloads):
    """One service job over trivial tasks; returns (cpu_s, wall_s, results).

    Serial worker, no result cache: the job is the queue/dispatch/trace
    machinery and nothing else, and ``time.process_time`` (CPU across
    all threads) stays steady where wall clock jitters on a busy host.
    GC is fenced out of the timed region — its pauses land on whichever
    mode happens to trip the threshold.
    """
    import gc

    from repro.service.core import SimulationService

    service = SimulationService(
        workers=1, task_fn=_fleet_task, tracer=tracer_factory()
    )
    service.start()
    gc.collect()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        job = service.submit([dict(payload) for payload in payloads])
        service.wait(job.id, timeout=300.0)
        cpu = time.process_time() - cpu_start
        wall = time.perf_counter() - wall_start
        results = service.job_results(job.id)
    finally:
        gc.enable()
        service.drain(grace_s=10.0)
    return cpu, wall, results


def _fleet_report(repeats: int):
    from repro.obs.fleet import FleetTracer

    modes = [
        ("untraced", lambda: None),
        ("trace_off", lambda: FleetTracer(proc="bench", enabled=False)),
        ("trace_on", lambda: FleetTracer(proc="bench")),
    ]
    payloads = _fleet_payloads()
    cpus = {}
    walls = {}
    results = {}
    ratios = {name: [] for name, _ in modes if name != "untraced"}
    _run_fleet_once(lambda: None, payloads)  # warmup: imports, allocator
    # Pair each traced run with the untraced run from the same iteration
    # (paired CPU ratios cancel host drift a best-of-N cannot), and
    # rotate the in-iteration order so the systematic back-to-back-run
    # slowdown lands on every mode equally.  A multiple of len(modes)
    # iterations keeps the rotation balanced; the trimmed mean then
    # cancels the positional bias to first order.
    iterations = -(-max(repeats, FLEET_MIN_REPEATS) // len(modes)) * len(modes)
    for index in range(iterations):
        iteration = {}
        order = modes[index % len(modes):] + modes[: index % len(modes)]
        for name, factory in order:
            cpu, wall, res = _run_fleet_once(factory, payloads)
            iteration[name] = cpu
            cpus[name] = min(cpus.get(name, cpu), cpu)
            walls[name] = min(walls.get(name, wall), wall)
            results[name] = res
        for name in ratios:
            ratios[name].append(iteration[name] / iteration["untraced"])
    for name, _factory in modes:
        print(f"{name:<12} cpu {cpus[name]:.3f} s   wall {walls[name]:.3f} s")

    baseline = results["untraced"]
    for name, result in results.items():
        if result != baseline:
            raise SystemExit(
                f"fleet mode {name!r} changed job results — tracing must "
                "never touch simulation output"
            )
    def _trimmed_mean(values):
        trim = len(values) // 6  # drop the noisiest ~17% from each tail
        middle = sorted(values)[trim:-trim] if trim else sorted(values)
        return statistics.fmean(middle)

    overheads = {
        name: round(100.0 * (_trimmed_mean(values) - 1.0), 2)
        for name, values in ratios.items()
    }
    if overheads["trace_off"] >= DISABLED_BUDGET_PCT:
        raise SystemExit(
            f"disabled-tracer overhead {overheads['trace_off']:.2f}% "
            f"exceeds the {DISABLED_BUDGET_PCT}% budget"
        )
    return {
        "benchmark": (
            f"fleet tracing overhead ({FLEET_SCENARIOS} trivial tasks, "
            "serial dispatch, no cache)"
        ),
        "repeats": iterations,
        "cpu_s": {name: round(cpu, 3) for name, cpu in cpus.items()},
        "wall_s": {name: round(wall, 3) for name, wall in walls.items()},
        "overhead_pct_vs_untraced": overheads,
        "disabled_budget_pct": DISABLED_BUDGET_PCT,
        "results_identical_across_modes": True,
        "note": (
            "overheads are the trimmed mean of per-iteration paired CPU "
            "ratios under a rotated mode order: trace_off is gated (<2%) — "
            "a constructed-but-disabled FleetTracer may not tax the "
            "dispatch path; trace_on does real span bookkeeping and is "
            "tracked, not gated."
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N walls")
    parser.add_argument(
        "--mode",
        choices=("sim", "fleet"),
        default="sim",
        help="sim: per-run observability overhead (default); "
        "fleet: service tracing overhead",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_obs.json",
    )
    args = parser.parse_args()

    if args.mode == "fleet":
        report = _fleet_report(args.repeats)
        doc = {}
        if args.output.exists():
            doc = json.loads(args.output.read_text())
        doc["fleet"] = report
        args.output.write_text(json.dumps(doc, indent=2) + "\n")
        print(json.dumps(report["overhead_pct_vs_untraced"], indent=2))
        print(f"wrote {args.output}")
        return

    import tempfile

    with tempfile.TemporaryDirectory(prefix="obs-bench-trace-") as trace_dir:
        modes = [
            ("plain", _run_plain),
            ("obs_off", _run_obs_off),
            ("metrics_on", _run_metrics_on),
            ("profile_on", _run_profile_on),
            ("full_trace", _make_full_trace(Path(trace_dir))),
        ]
        walls = {}
        results = {}
        for name, fn in modes:
            walls[name], results[name] = _best_of(fn, args.repeats)
            print(f"{name:<12} {walls[name]:.3f} s")

    baseline = results["plain"]
    for name, result in results.items():
        if result != baseline:
            raise SystemExit(
                f"mode {name!r} changed simulation metrics — the "
                "observability layer must be bit-identical"
            )

    overheads = {
        name: round(100.0 * (walls[name] / walls["plain"] - 1.0), 2)
        for name in walls
        if name != "plain"
    }
    if overheads["obs_off"] >= DISABLED_BUDGET_PCT:
        raise SystemExit(
            f"disabled-observability overhead {overheads['obs_off']:.2f}% "
            f"exceeds the {DISABLED_BUDGET_PCT}% budget"
        )

    config = _config()
    report = {
        "benchmark": "observability overhead (scaled pause-0 full run)",
        "scenario": {
            "num_nodes": config.num_nodes,
            "duration_s": config.duration,
            "pause_time_s": config.pause_time,
            "seed": config.seed,
        },
        "repeats": args.repeats,
        "wall_s": {name: round(wall, 3) for name, wall in walls.items()},
        "overhead_pct_vs_plain": overheads,
        "disabled_budget_pct": DISABLED_BUDGET_PCT,
        "metrics_identical_across_modes": True,
        "note": (
            "obs_off is gated (<2%): an attached-but-idle facade may not tax "
            "the hot path. metrics_on/profile_on/full_trace do real extra "
            "work and are tracked, not gated."
        ),
    }
    if args.output.exists():
        previous = json.loads(args.output.read_text())
        if "fleet" in previous:
            report["fleet"] = previous["fleet"]
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(overheads, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

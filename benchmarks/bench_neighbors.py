"""Microbenchmarks for the mobility/PHY geometry hot path.

Not a paper artifact — these pin the cost of the three geometry operations
the channel leans on (batched position sampling, the per-quantum neighbour
refresh, and the route-validity oracle) so regressions show up in isolation
rather than smeared over a whole experiment.  Run with ``--benchmark-disable``
for a fast correctness smoke.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.waypoint import RandomWaypointModel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation

NODES = 50
DURATION = 90.0


def _model(seed: int = 1) -> RandomWaypointModel:
    return RandomWaypointModel(
        num_nodes=NODES,
        width=1000.0,
        height=500.0,
        duration=DURATION,
        rng=np.random.default_rng(seed),
        max_speed=20.0,
        pause_time=0.0,
    )


def test_batched_positions_throughput(benchmark):
    """One vectorized positions() sweep per quantum over the whole run."""
    model = _model()
    times = np.arange(0.0, DURATION, 0.05)

    def run():
        total = 0.0
        for t in times:
            total += float(model.positions(float(t))[:, 0].sum())
        return total

    result = benchmark(run)
    assert result > 0.0


def test_scalar_position_loop_reference(benchmark):
    """The per-node Python loop the batched API replaced (for comparison)."""
    model = _model()
    times = np.arange(0.0, DURATION, 0.05)[:200]  # subset: this one is slow

    def run():
        total = 0.0
        for t in times:
            for node_id in model.node_ids:
                total += model.position(node_id, float(t))[0]
        return total

    result = benchmark(run)
    assert result > 0.0


def test_neighbor_refresh_throughput(benchmark):
    """Full O(n^2) squared-distance refresh, once per 50 ms quantum."""
    model = _model()

    def run():
        cache = NeighborCache(model, DiskPropagation(), quantum=0.05, index="allpairs")
        degree = 0
        for t in np.arange(0.0, DURATION, 0.05):
            degree += len(cache.rx_neighbors(0, float(t)))
        return degree

    degree = benchmark(run)
    assert degree > 0


def test_grid_refresh_throughput(benchmark):
    """Same workload on the uniform-grid index: per-quantum cost is bucket
    reuse plus a 3x3-block query instead of the dense n^2 matrix."""
    model = _model()

    def run():
        cache = NeighborCache(model, DiskPropagation(), quantum=0.05, index="grid")
        degree = 0
        for t in np.arange(0.0, DURATION, 0.05):
            degree += len(cache.rx_neighbors(0, float(t)))
        return degree

    degree = benchmark(run)
    assert degree > 0


def test_grid_matches_allpairs_degree():
    """Cheap smoke (runs even with --benchmark-disable): both backends see
    the same neighbourhood over the whole run."""
    model = _model()
    allpairs = NeighborCache(model, DiskPropagation(), quantum=0.05, index="allpairs")
    grid = NeighborCache(model, DiskPropagation(), quantum=0.05, index="grid")
    for t in np.arange(0.0, DURATION, 2.5):
        for node_id in (0, NODES // 2, NODES - 1):
            assert allpairs.rx_neighbors(node_id, float(t)) == grid.rx_neighbors(
                node_id, float(t)
            )


def test_route_valid_throughput(benchmark):
    """The cache-correctness oracle: vectorized per-hop range check."""
    model = _model()
    cache = NeighborCache(model, DiskPropagation(), quantum=0.05)
    rng = np.random.default_rng(7)
    routes = [
        [int(n) for n in rng.permutation(NODES)[: int(rng.integers(2, 8))]]
        for _ in range(200)
    ]

    def run():
        valid = 0
        for t in np.arange(0.0, DURATION, 1.0):
            for route in routes:
                valid += cache.route_valid(route, float(t))
        return valid

    valid = benchmark(run)
    assert valid >= 0
